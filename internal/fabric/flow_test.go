package fabric

import (
	"strings"
	"testing"

	"aurochs/internal/analysis/flow"
	"aurochs/internal/record"
)

// The differential suite: every witnessed defect class gets a concrete
// graph builder parameterized by record count. The prover predicts the
// failure on a small build; the replay drives a build sized by the
// witness and asserts the engine fails exactly as predicted.

func flowRecs(n int, count uint32) []record.Rec {
	out := make([]record.Rec, n)
	for i := range out {
		out[i] = record.Make(uint32(i), count)
	}
	return out
}

func decCount(r *record.Rec) {
	if c := r.Get(1); c > 0 {
		r.Put(1, c-1)
	}
}

func exitWhenZero(r *record.Rec) int {
	if r.Get(1) == 0 {
		return 0
	}
	return 1
}

// undersizedSpinLoop has no exit at all: every record circulates forever.
func undersizedSpinLoop(n int) *Graph {
	g := NewGraph()
	ext, body, recirc := g.Link("ext"), g.Link("body"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", flowRecs(n, 1), ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewMap("spin", decCount, body, recirc).Cyclic())
	return g
}

// swappedLoopMerge wires NewLoopMerge with its recirc and ext arguments
// reversed — the classic bug DiagLoopEntryMiswired catches statically.
// Records carry count 3 so each laps the loop before exiting.
func swappedLoopMerge(n int) *Graph {
	g := NewGraph()
	ext, body, dec, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("dec"),
		g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", flowRecs(n, 3), ext))
	g.Add(NewLoopMerge("entry", ext, recirc, body, ctl)) // swapped!
	g.Add(NewMap("dec", decCount, body, dec).Cyclic())
	g.Add(NewFilter("exit?", exitWhenZero, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	g.Add(NewSink("snk", exit))
	return g
}

// nilCtlExit declares an exit port on a filter that carries no loop
// control: records leave but are never counted out.
func nilCtlExit(n int) *Graph {
	g := NewGraph()
	ext, body, dec, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("dec"),
		g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", flowRecs(n, 1), ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewMap("dec", decCount, body, dec).Cyclic())
	g.Add(NewFilter("exit?", exitWhenZero, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, nil)) // no ctl: exits uncounted
	g.Add(NewSink("snk", exit))
	return g
}

// uncountedSideEntry feeds a second source into a plain merge inside the
// loop, bypassing the counted entry. Check cannot see this — the cycle
// has a correctly oriented loop entry — but the exits of the smuggled
// records drive the in-flight count below zero.
func uncountedSideEntry(n int) *Graph {
	g := NewGraph()
	ext, sneak, merged, body, dec, exit, recirc := g.Link("ext"), g.Link("sneak"),
		g.Link("merged"), g.Link("body"), g.Link("dec"), g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", flowRecs(n, 1), ext))
	g.Add(NewSource("side", flowRecs(n, 1), sneak))
	g.Add(NewLoopMerge("entry", recirc, ext, merged, ctl))
	g.Add(NewMerge("mix", merged, sneak, body).Cyclic())
	g.Add(NewMap("dec", decCount, body, dec).Cyclic())
	g.Add(NewFilter("exit?", exitWhenZero, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	g.Add(NewSink("snk", exit))
	return g
}

// exitBlockedChain drains loop A's counted exit into loop B, which has no
// exit of its own: A's exits exist but cannot relieve pressure.
func exitBlockedChain(n int) *Graph {
	g := NewGraph()
	ext, aBody, aDec, handoff, aRec := g.Link("ext"), g.Link("a.body"),
		g.Link("a.dec"), g.Link("handoff"), g.Link("a.recirc")
	bBody, bRec := g.Link("b.body"), g.Link("b.recirc")
	actl, bctl := NewLoopCtl(), NewLoopCtl()
	g.Add(NewSource("src", flowRecs(n, 1), ext))
	g.Add(NewLoopMerge("a.entry", aRec, ext, aBody, actl))
	g.Add(NewMap("a.dec", decCount, aBody, aDec).Cyclic())
	g.Add(NewFilter("a.exit?", exitWhenZero, aDec, []Output{
		{Link: handoff, Exit: true},
		{Link: aRec, NoEOS: true},
	}, actl))
	g.Add(NewLoopMerge("b.entry", bRec, handoff, bBody, bctl))
	g.Add(NewMap("b.spin", decCount, bBody, bRec).Cyclic())
	return g
}

// chainedCleanLoops is the positive control: two well-formed countdown
// loops in sequence, proving clean and draining at any record count.
func chainedCleanLoops(n int) *Graph {
	g := NewGraph()
	ext, aBody, aDec, handoff, aRec := g.Link("ext"), g.Link("a.body"),
		g.Link("a.dec"), g.Link("handoff"), g.Link("a.recirc")
	bBody, bDec, out, bRec := g.Link("b.body"), g.Link("b.dec"), g.Link("out"), g.Link("b.recirc")
	actl, bctl := NewLoopCtl(), NewLoopCtl()
	g.Add(NewSource("src", flowRecs(n, 2), ext))
	g.Add(NewLoopMerge("a.entry", aRec, ext, aBody, actl))
	g.Add(NewMap("a.dec", decCount, aBody, aDec).Cyclic())
	g.Add(NewFilter("a.exit?", func(r *record.Rec) int {
		if r.Get(1) <= 1 {
			return 0
		}
		return 1
	}, aDec, []Output{
		{Link: handoff, Exit: true},
		{Link: aRec, NoEOS: true},
	}, actl))
	g.Add(NewLoopMerge("b.entry", bRec, handoff, bBody, bctl))
	g.Add(NewMap("b.dec", decCount, bBody, bDec).Cyclic())
	g.Add(NewFilter("b.exit?", exitWhenZero, bDec, []Output{
		{Link: out, Exit: true},
		{Link: bRec, NoEOS: true},
	}, bctl))
	g.Add(NewSink("snk", out))
	return g
}

func flowFinding(t *testing.T, rep *flow.Report, rule string) *flow.Finding {
	t.Helper()
	var first *flow.Finding
	for i := range rep.Findings {
		if rep.Findings[i].Rule != rule {
			continue
		}
		if rep.Findings[i].Witness != nil {
			return &rep.Findings[i]
		}
		if first == nil {
			first = &rep.Findings[i]
		}
	}
	if first != nil {
		return first
	}
	t.Fatalf("prover missed %s:\n%s", rule, rep)
	return nil
}

// TestFlowWitnessReplay is the prover-vs-simulator differential: for each
// known-wedging topology, the prover's witness — mode, injection count,
// blocked set — must reproduce against a real run.
func TestFlowWitnessReplay(t *testing.T) {
	cases := []struct {
		name  string
		build func(int) *Graph
		rule  string
		mode  flow.WitnessMode
	}{
		{"no-exit-spin", undersizedSpinLoop, flow.RuleNoExit, flow.WedgeWitness},
		{"swapped-loop-merge", swappedLoopMerge, flow.RuleEntryMiswired, flow.StallWitness},
		{"nil-ctl-exit", nilCtlExit, flow.RuleUncountedExit, flow.StallWitness},
		{"uncounted-side-entry", uncountedSideEntry, flow.RuleUncountedEntry, flow.UnderflowWitness},
		{"exit-blocked-chain", exitBlockedChain, flow.RuleExitBlocked, flow.WedgeWitness},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := tc.build(8).ProveFlow()
			f := flowFinding(t, rep, tc.rule)
			w := f.Witness
			if w == nil {
				t.Fatalf("%s finding has no witness: %s", tc.rule, f.Msg)
			}
			if w.Mode != tc.mode {
				t.Fatalf("witness mode = %s, want %s", w.Mode, tc.mode)
			}
			n := w.Inject
			if n < 8 {
				n = 8
			}
			if err := ReplayWitness(tc.build(n), w); err != nil {
				t.Fatalf("witness did not reproduce: %v", err)
			}
		})
	}
}

// TestFlowCleanLoopsProveAndDrain is the positive control: the chained
// loops prove deadlock-free and then actually drain — including at the
// same record count a wedge witness would inject.
func TestFlowCleanLoopsProveAndDrain(t *testing.T) {
	g := chainedCleanLoops(8)
	rep, err := g.ProveWith(ProveOptions{RequireDeadlockFree: true})
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("clean loops rejected:\n%s", rep)
	}
	if rep.Flow == nil || !rep.Flow.DeadlockFree() {
		t.Fatalf("flow report missing or unclean:\n%v", rep.Flow)
	}
	n := rep.Flow.Occupancy.Total + 2*record.NumLanes
	g2 := chainedCleanLoops(n)
	if _, err := g2.Run(int64(400 * n)); err != nil {
		t.Fatalf("clean loops wedged with %d records: %v", n, err)
	}
}

// TestFlowReplayRejectsWrongPrediction: a witness predicting a wedge on a
// healthy graph must be reported as a divergence, not silently pass.
func TestFlowReplayRejectsWrongPrediction(t *testing.T) {
	w := &flow.Witness{Rule: flow.RuleNoExit, Mode: flow.WedgeWitness,
		Inject: 8, Blocked: []string{"a.entry"}}
	err := ReplayWitness(chainedCleanLoops(8), w)
	if err == nil || !strings.Contains(err.Error(), "predicted a deadlock") {
		t.Fatalf("replay accepted a wrong prediction: %v", err)
	}
}

// TestFlowNetLowering spot-checks the Graph → flow.Net lowering on the
// canonical loop: kinds, loop-entry marking, ctl identity, exit ports.
func TestFlowNetLowering(t *testing.T) {
	g := nilCtlExit(8)
	net := g.FlowNet()
	byName := map[string]*flow.Node{}
	for i := range net.Nodes {
		byName[net.Nodes[i].Name] = &net.Nodes[i]
	}
	if n := byName["src"]; n.Kind != flow.SourceKind || n.Supply != 8 {
		t.Fatalf("src lowered as %v supply %d", n.Kind, n.Supply)
	}
	entry := byName["entry"]
	if entry.Kind != flow.MergeKind || !entry.LoopEntry || entry.Ctl < 0 {
		t.Fatalf("entry lowered as %+v", entry)
	}
	if entry.Pri < 0 || net.Edges[entry.Pri].Name != "recirc" {
		t.Fatalf("entry.Pri = %d, want the recirc edge", entry.Pri)
	}
	if entry.Sec < 0 || net.Edges[entry.Sec].Name != "ext" {
		t.Fatalf("entry.Sec = %d, want the ext edge", entry.Sec)
	}
	exitf := byName["exit?"]
	if exitf.Kind != flow.FilterKind || exitf.Ctl != -1 || exitf.CanKill {
		t.Fatalf("ctl-less filter lowered as %+v", exitf)
	}
	var sawExitPort bool
	for _, p := range exitf.Out {
		if p.Exit && p.Edge >= 0 && net.Edges[p.Edge].Name == "exit" {
			sawExitPort = true
		}
	}
	if !sawExitPort {
		t.Fatalf("filter's Exit output not lowered: %+v", exitf.Out)
	}
}
