package fabric

import (
	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// SpillQueue is an elastic thread queue: on-chip up to OnChipRecs records,
// spilling to a DRAM buffer beyond that (paper §IV-C: "To account for
// limited queue size in scratchpads, we spill search threads to a queue in
// DRAM"). Placing one on the recirculating path of a forking tree walk
// makes the loop deadlock-free — fork fan-out can exceed on-chip buffering
// without stalling the cycle.
//
// Functionally the records stay in host memory; the timing cost of a spill
// (a DRAM write on enqueue past the threshold, a DRAM read before those
// records become poppable again) is charged through real requests against
// the shared HBM, so spilling competes for bandwidth like everything else.
type SpillQueue struct {
	name     string
	h        *dram.HBM
	base     uint32
	recWords int
	onchip   int
	in       *sim.Link
	out      *sim.Link
	stat     *sim.Stats

	front   ring.Queue[record.Rec] // on-chip, ready to emit
	spilled []record.Rec           // resident in DRAM
	refill  int                    // records currently being fetched back
	wptr    uint32
	rptr    uint32
	eosIn   bool
	eos     bool
	// Spills counts records that took the DRAM round trip.
	Spills int64

	scratch []record.Rec // reused staging for one input vector's records
	wdata   []uint32     // reused write payload (consumed synchronously by SubmitAt)

	refillCnt, spillCnt *sim.Counter
}

// NewSpillQueue builds a spill queue. base is the DRAM word address of the
// spill ring; onChipRecs the scratchpad-backed capacity.
func NewSpillQueue(g *Graph, name string, base uint32, recWords, onChipRecs int, in, out *sim.Link) *SpillQueue {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	s := &SpillQueue{
		name: name, h: g.HBM, base: base, recWords: recWords,
		onchip: onChipRecs, in: in, out: out, stat: g.Stats(),
	}
	s.refillCnt = s.stat.Counter(name + ".refills")
	s.spillCnt = s.stat.Counter(name + ".spilled")
	g.Add(s)
	return s
}

// Name implements sim.Component.
func (s *SpillQueue) Name() string { return s.name }

// InputLinks implements sim.InputPorts.
func (s *SpillQueue) InputLinks() []*sim.Link { return []*sim.Link{s.in} }

// OutputLinks implements sim.OutputPorts.
func (s *SpillQueue) OutputLinks() []*sim.Link { return []*sim.Link{s.out} }

// Done implements sim.Component: a spill queue sits on cyclic paths and
// never sees EOS; it is done when empty.
func (s *SpillQueue) Done() bool {
	return s.front.Len() == 0 && len(s.spilled) == 0 && s.refill == 0
}

// Idle implements sim.Idler: nothing on chip, nothing spilled that could
// start a refill, and no poppable input.
func (s *SpillQueue) Idle(int64) bool {
	if s.front.Len() > 0 {
		return false
	}
	if len(s.spilled) > 0 && s.refill == 0 {
		return false
	}
	if !s.eosIn && !s.in.Empty() {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: spills and refills are real HBM
// requests whose completions fire from the HBM's tick.
func (s *SpillQueue) SharedState() []any { return []any{s.h} }

// WakeHint implements sim.WakeHinter: no self-timed events — progress
// comes from link flits and HBM completions (shared-state partner).
func (s *SpillQueue) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (s *SpillQueue) Tick(cycle int64) {
	// Emit one vector from the on-chip segment.
	if s.front.Len() > 0 && s.out.CanPush() {
		n := s.front.Len()
		if n > record.NumLanes {
			n = record.NumLanes
		}
		v := s.out.StageVec(cycle)
		for i := 0; i < n; i++ {
			v.Push(s.front.Pop())
		}
	}
	// Refill from DRAM when the on-chip segment runs low.
	if s.front.Len() < s.onchip/2 && len(s.spilled) > 0 && s.refill == 0 {
		n := len(s.spilled)
		if n > 64 {
			n = 64
		}
		// One batch copy and one closure per refill of up to 64 records,
		// amortized over the DRAM round trip; the copy must escape into the
		// callback because s.spilled is resliced as soon as the submit lands.
		batch := append([]record.Rec(nil), s.spilled[:n]...) // lint:hotalloc-ok per-refill batch copy, amortized over the DRAM round trip
		words := n * s.recWords
		ok := s.h.SubmitAt(cycle, dram.Request{
			Addr: s.base + s.rptr%spillRingWords, Words: words,
			Done: func([]uint32) { // lint:hotalloc-ok per-refill closure, amortized over the DRAM round trip
				for _, r := range batch {
					*s.front.PushRef() = r
				}
				s.refill = 0
			},
		})
		if ok {
			s.refill = n
			s.spilled = s.spilled[n:]
			s.rptr += uint32(words)
			s.refillCnt.Add(1)
		}
	}
	// Accept input: into the on-chip segment if it fits and nothing is
	// spilled ahead of it (FIFO), otherwise spill to DRAM.
	if !s.eosIn && !s.in.Empty() {
		f := s.in.Pop()
		if f.EOS {
			s.eosIn = true
			return
		}
		recs := f.Vec.AppendRecords(s.scratch[:0])
		s.scratch = recs[:0]
		if len(s.spilled) == 0 && s.refill == 0 && s.front.Len()+len(recs) <= s.onchip {
			for _, r := range recs {
				*s.front.PushRef() = r
			}
			return
		}
		words := len(recs) * s.recWords
		// Cap-guarded scratch: allocated only while the largest vector seen
		// is still growing, then reused verbatim.
		if cap(s.wdata) < words {
			s.wdata = make([]uint32, 0, words) // lint:hotalloc-ok cap-guarded scratch, allocates until the widest vector is covered
		}
		data := s.wdata[:0]
		for _, r := range recs {
			for i := 0; i < s.recWords; i++ {
				if i < r.Len() {
					data = append(data, r.Get(i)) // lint:hotalloc-ok writes into cap-guarded scratch, cannot grow
				} else {
					data = append(data, 0) // pad to the configured slot width; lint:hotalloc-ok writes into cap-guarded scratch, cannot grow
				}
			}
		}
		if s.h.SubmitAt(cycle, dram.Request{Addr: s.base + s.wptr%spillRingWords, Words: words, Write: true, Data: data}) {
			s.wptr += uint32(words)
		}
		// Even if the write was backpressured, keep the records: the
		// traffic accounting is best-effort under saturation.
		// Spilling is the explicit overflow path: the backlog growing past
		// the on-chip segment is the event being modeled.
		s.spilled = append(s.spilled, recs...) // lint:hotalloc-ok spill backlog growth is the modeled overflow event
		s.Spills += int64(len(recs))
		s.spillCnt.Add(int64(len(recs)))
	}
}

// spillRingWords bounds the DRAM footprint of a spill ring; addresses wrap.
const spillRingWords = 1 << 22
