package fabric

import (
	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// KeyFn extracts a sort key from a record. Multi-word keys pack into the
// uint64 (Gorgon serializes wide keys across pipeline stages; the
// comparison outcome is the same).
type KeyFn func(record.Rec) uint64

// OrderedMerge merges R sorted input streams into one sorted output at up
// to a vector per cycle — Gorgon's high-radix merge element, which Aurochs
// inherits for its sort and LSM kernels (paper §IV-B). An input with no
// buffered records that has not signalled EOS stalls the merge (its next
// record could be the global minimum).
type OrderedMerge struct {
	name string
	ins  []*sim.Link
	out  *sim.Link
	key  KeyFn

	bufs []ring.Queue[record.Rec]
	eosv []bool
	eos  bool
}

// NewOrderedMerge builds an R-way merge over sorted inputs.
func NewOrderedMerge(name string, key KeyFn, ins []*sim.Link, out *sim.Link) *OrderedMerge {
	if len(ins) < 2 {
		panic("fabric: ordered merge needs at least two inputs")
	}
	return &OrderedMerge{
		name: name, ins: ins, out: out, key: key,
		bufs: make([]ring.Queue[record.Rec], len(ins)),
		eosv: make([]bool, len(ins)),
	}
}

// Name implements sim.Component.
func (m *OrderedMerge) Name() string { return m.name }

// InputLinks implements sim.InputPorts.
func (m *OrderedMerge) InputLinks() []*sim.Link { return m.ins }

// OutputLinks implements sim.OutputPorts.
func (m *OrderedMerge) OutputLinks() []*sim.Link { return []*sim.Link{m.out} }

// Done implements sim.Component.
func (m *OrderedMerge) Done() bool { return m.eos }

// Idle implements sim.Idler: no refill possible, and either the output is
// blocked or a live input with an empty buffer stalls the merge.
func (m *OrderedMerge) Idle(int64) bool {
	for i, in := range m.ins {
		if !m.eosv[i] && m.bufs[i].Len() < record.NumLanes && !in.Empty() {
			return false
		}
	}
	if m.eos || !m.out.CanPush() {
		return true
	}
	for i := range m.ins {
		if m.bufs[i].Len() == 0 && !m.eosv[i] {
			return true // cannot prove the minimum; the link is also empty
		}
	}
	return false // can emit records or the final EOS
}

// WakeHint implements sim.WakeHinter: the merge is purely link-driven.
func (m *OrderedMerge) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (m *OrderedMerge) Tick(cycle int64) {
	// Refill: pull one vector per starved input.
	for i, in := range m.ins {
		if m.eosv[i] || m.bufs[i].Len() >= record.NumLanes || in.Empty() {
			continue
		}
		f := in.Pop()
		if f.EOS {
			m.eosv[i] = true
		} else {
			for k := 0; k < record.NumLanes; k++ {
				if f.Vec.Mask&(1<<uint(k)) != 0 {
					*m.bufs[i].PushRef() = f.Vec.Lane[k]
				}
			}
		}
	}
	// Emit: up to one dense vector of globally smallest records. Stall if
	// any live input is empty (cannot prove the minimum). The output flit
	// is staged lazily, only once the first record is proven emittable.
	if !m.out.CanPush() {
		return
	}
	var v *record.Vector
	for v == nil || v.Count() < record.NumLanes {
		best := -1
		var bestKey uint64
		stalled := false
		for i := range m.ins {
			if m.bufs[i].Len() == 0 {
				if !m.eosv[i] {
					stalled = true
					break
				}
				continue
			}
			k := m.key(*m.bufs[i].Front())
			if best < 0 || k < bestKey {
				best, bestKey = i, k
			}
		}
		if stalled || best < 0 {
			break
		}
		if v == nil {
			v = m.out.StageVec(cycle)
		}
		v.Push(m.bufs[best].Pop())
	}
	if v != nil {
		return
	}
	// EOS when every input has ended and drained.
	if !m.eos {
		for i := range m.ins {
			if !m.eosv[i] || m.bufs[i].Len() > 0 {
				return
			}
		}
		m.out.PushEOS(cycle)
		m.eos = true
	}
}

// MergeJoin joins two sorted record streams on equal keys, emitting one
// output record per matching pair via the combiner — the linear-time merge
// phase of a sort-merge join. Duplicate key groups produce their full cross
// product; the build-side group is buffered on chip.
type MergeJoin struct {
	name    string
	a, b    *sim.Link
	out     *sim.Link
	keyA    KeyFn
	keyB    KeyFn
	combine func(a, b record.Rec) record.Rec

	bufA, bufB ring.Queue[record.Rec]
	eosA, eosB bool

	groupA    []record.Rec // reused across groups; reset to length zero
	groupKey  uint64
	groupOpen bool // collecting the current A group
	pending   ring.Queue[record.Rec]
	eos       bool
	matches   int64
}

// NewMergeJoin builds the merge-join element.
func NewMergeJoin(name string, keyA, keyB KeyFn, combine func(a, b record.Rec) record.Rec, a, b, out *sim.Link) *MergeJoin {
	return &MergeJoin{name: name, a: a, b: b, out: out, keyA: keyA, keyB: keyB, combine: combine}
}

// Name implements sim.Component.
func (j *MergeJoin) Name() string { return j.name }

// InputLinks implements sim.InputPorts.
func (j *MergeJoin) InputLinks() []*sim.Link { return []*sim.Link{j.a, j.b} }

// OutputLinks implements sim.OutputPorts.
func (j *MergeJoin) OutputLinks() []*sim.Link { return []*sim.Link{j.out} }

// Done implements sim.Component.
func (j *MergeJoin) Done() bool { return j.eos }

// Matches returns the pairs emitted so far.
func (j *MergeJoin) Matches() int64 { return j.matches }

// Idle implements sim.Idler: conservative — false whenever any buffered
// work, poppable input, or terminal transition could advance the join.
func (j *MergeJoin) Idle(int64) bool {
	if j.pending.Len() > 0 {
		return false
	}
	if !j.eosA && j.bufA.Len() < 2*record.NumLanes && !j.a.Empty() {
		return false
	}
	if !j.eosB && j.bufB.Len() < 2*record.NumLanes && !j.b.Empty() {
		return false
	}
	if j.bufA.Len() > 0 || j.bufB.Len() > 0 {
		return false
	}
	if j.eosA && (j.groupOpen || len(j.groupA) > 0) {
		return false
	}
	if j.eosA && j.eosB && !j.eos {
		return false
	}
	return true
}

// WakeHint implements sim.WakeHinter: the join is purely link-driven.
func (j *MergeJoin) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (j *MergeJoin) Tick(cycle int64) {
	j.refill()
	for work := 0; work < record.NumLanes && j.pending.Len() < 4*record.NumLanes; work++ {
		if !j.step() {
			break
		}
	}
	j.emit(cycle)
}

func (j *MergeJoin) refill() {
	if !j.eosA && j.bufA.Len() < 2*record.NumLanes && !j.a.Empty() {
		f := j.a.Pop()
		if f.EOS {
			j.eosA = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Mask&(1<<uint(i)) != 0 {
					*j.bufA.PushRef() = f.Vec.Lane[i]
				}
			}
		}
	}
	if !j.eosB && j.bufB.Len() < 2*record.NumLanes && !j.b.Empty() {
		f := j.b.Pop()
		if f.EOS {
			j.eosB = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Mask&(1<<uint(i)) != 0 {
					*j.bufB.PushRef() = f.Vec.Lane[i]
				}
			}
		}
	}
}

// step advances the join by one unit of work; false means stalled (waiting
// on input) or finished.
func (j *MergeJoin) step() bool {
	// Phase 1: complete the current A group.
	if j.groupOpen || len(j.groupA) == 0 {
		if j.bufA.Len() == 0 {
			if !j.eosA {
				return false // group may continue in the next vector
			}
			if j.groupOpen {
				j.groupOpen = false // EOS closes the group
			} else if len(j.groupA) == 0 {
				// A exhausted entirely: discard the rest of B.
				if j.bufB.Len() > 0 {
					j.bufB.Drop()
					return true
				}
				return false
			}
		} else {
			ka := j.keyA(*j.bufA.Front())
			if !j.groupOpen && len(j.groupA) == 0 {
				j.groupKey, j.groupOpen = ka, true
			}
			if j.groupOpen {
				if ka == j.groupKey {
					// Reset to groupA[:0] when the group closes, so the
					// backing array grows to the largest group then reuses.
					j.groupA = append(j.groupA, j.bufA.Pop()) // lint:hotalloc-ok grows to the largest join group, then reuses
					return true
				}
				j.groupOpen = false // next key reached: group complete
			}
		}
	}
	// Phase 2: consume B against the completed group.
	if j.bufB.Len() == 0 {
		if j.eosB {
			// Nothing left to match: drop the group and drain A.
			j.groupA = j.groupA[:0]
			if j.bufA.Len() > 0 {
				j.bufA.Drop()
				return true
			}
			return false
		}
		return false
	}
	kb := j.keyB(*j.bufB.Front())
	switch {
	case kb < j.groupKey:
		j.bufB.Drop()
	case kb == j.groupKey:
		b := j.bufB.Pop()
		for _, a := range j.groupA {
			*j.pending.PushRef() = j.combine(a, b)
			j.matches++
		}
	default: // kb > groupKey: this group is spent
		j.groupA = j.groupA[:0]
	}
	return true
}

func (j *MergeJoin) emit(cycle int64) {
	if j.pending.Len() > 0 && j.out.CanPush() {
		n := j.pending.Len()
		if n > record.NumLanes {
			n = record.NumLanes
		}
		v := j.out.StageVec(cycle)
		for i := 0; i < n; i++ {
			v.Push(j.pending.Pop())
		}
		return
	}
	if !j.eos && j.eosA && j.eosB && j.bufA.Len() == 0 && j.bufB.Len() == 0 &&
		j.pending.Len() == 0 && j.out.CanPush() {
		j.eos = true
		j.out.PushEOS(cycle)
	}
}
