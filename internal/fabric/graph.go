// Package fabric models the spatial compute fabric of Gorgon/Aurochs: a
// graph of 16-lane compute tiles and scratchpad tiles connected by
// registered, latency-annotated streaming links. Kernels (internal/core)
// assemble graphs from this package's node types:
//
//   - Source / Sink    — stream endpoints
//   - Map              — per-record mutation (6-stage pipelined datapath)
//   - Filter           — branch-to-dataflow: predicate splits a stream in
//     two with thread compaction on both sides
//   - Merge            — recombines streams (priority to the cyclic path)
//   - Fork             — spawns child threads from a parent
//   - spad.Tile        — the sparse reordering scratchpad (package spad)
//   - DRAMNode         — gather/scatter/append against the shared HBM
//
// Cyclic graphs — the paper's recirculating while-loops — are coordinated
// by a LoopCtl that implements the stream-end token protocol of §III-A:
// end-of-stream leaves a loop only after the cyclic pipeline has provably
// emptied.
package fabric

import (
	"fmt"

	"aurochs/internal/dram"
	"aurochs/internal/sim"
)

// Default structural parameters of the fabric model.
const (
	// PipelineDepth is a compute tile's datapath latency in cycles: six
	// statically reconfigured stages (paper §II-B).
	PipelineDepth = 6
	// LinkLatency is the default tile-to-tile interconnect latency. The
	// threading model tolerates arbitrary on-chip latencies, so kernels
	// leave this at the default unless a placement says otherwise.
	LinkLatency = 2
	// LinkCapacity is the default skid-buffer depth per link.
	LinkCapacity = 8
)

// Graph assembles a dataflow kernel: it owns the sim.System, the shared
// HBM (if any), and construction helpers. After wiring, call Run; it
// verifies the topology with Check before the first cycle ticks.
type Graph struct {
	Sys *sim.System
	HBM *dram.HBM

	// Workers selects the simulation kernel: values > 1 tick components on
	// that many goroutines per cycle (sim.RunOptions.Workers). Results are
	// bit-identical to the serial kernel at any worker count; kernels
	// thread core.Tuning.Parallelism into this field.
	Workers int

	// NoBatch forces the scalar tick path (sim.RunOptions.NoBatch); the
	// batch-vs-scalar conformance suite runs each blueprint once with this
	// set to obtain the reference execution.
	NoBatch bool

	hbmTicker *hbmComponent
	// defects collects construction-time wiring errors (e.g. a DRAM node
	// on a graph with no HBM attached) for Check to report alongside the
	// topology diagnostics.
	defects []Diag
}

// NewGraph creates an empty kernel graph with its own simulation system.
func NewGraph() *Graph {
	return &Graph{Sys: sim.NewSystem()}
}

// Stats exposes the system counter set.
func (g *Graph) Stats() *sim.Stats { return g.Sys.Stats() }

// Link creates a default link (LinkCapacity deep, LinkLatency cycles).
func (g *Graph) Link(name string) *sim.Link {
	return g.Sys.NewLink(name, LinkCapacity, LinkLatency)
}

// LinkLat creates a link with an explicit latency — used when a placement
// puts producer and consumer tiles far apart on the grid.
func (g *Graph) LinkLat(name string, latency int) *sim.Link {
	return g.Sys.NewLink(name, LinkCapacity, latency)
}

// Add registers nodes with the system.
func (g *Graph) Add(nodes ...sim.Component) {
	for _, n := range nodes {
		g.Sys.Add(n)
	}
}

// AttachHBM installs a shared HBM and registers its clock component. The
// HBM's clock state is rebased because this graph's cycles start at zero;
// kernel phases sharing one HBM run as separate graphs.
func (g *Graph) AttachHBM(h *dram.HBM) {
	h.ResetClock()
	g.HBM = h
	g.hbmTicker = &hbmComponent{h: h}
	g.Sys.Add(g.hbmTicker)
}

// StagePlan returns the two-level shard decomposition of the wired graph:
// pipeline stages (topological layers of the link graph, with recirculating
// loops collapsed to one layer) and, within each stage, lanes — component
// groups whose links never alias and whose shared-state keys are disjoint.
// This is exactly the plan the parallel kernel schedules by, exposed so
// placements, benchmarks, and tests can reason about a blueprint's
// parallel shape before (or without) running it.
func (g *Graph) StagePlan() *sim.ShardPlan {
	return g.Sys.PlanShards()
}

// StageOf returns each component's pipeline stage, indexed by registration
// order (the order of Graph.Add calls), as computed by StagePlan.
func (g *Graph) StageOf() []int {
	return g.Sys.PlanShards().CompStage
}

// Run verifies the graph topology, then simulates until the graph drains
// and returns elapsed cycles. A malformed graph is rejected before the
// first cycle with a *CheckError naming each structural bug.
func (g *Graph) Run(maxCycles int64) (int64, error) {
	if err := g.Check(); err != nil {
		return 0, err
	}
	return g.Sys.RunWith(maxCycles, sim.RunOptions{Workers: g.Workers, NoBatch: g.NoBatch})
}

// defectf records a construction-time wiring error for Check.
func (g *Graph) defectf(code DiagCode, format string, args ...any) {
	g.defects = append(g.defects, Diag{Code: code, Msg: fmt.Sprintf(format, args...)})
}

// hbmComponent adapts the HBM model to the component interface.
type hbmComponent struct {
	h *dram.HBM
}

func (c *hbmComponent) Name() string { return "hbm" }

func (c *hbmComponent) Tick(cycle int64) { c.h.Tick(cycle) }

// Done: the HBM is passive; it is done when no requests remain. Nodes that
// wait on it stay !Done until their responses arrive, so reporting drained
// here is safe.
func (c *hbmComponent) Done() bool { return c.h.Drained() }

// Idle implements sim.Idler: ticking an HBM with no queued or in-flight
// work — and no posted write due for its age-out flush — is a no-op. The
// answer is a pure function of (state, cycle); DRAM nodes submit via
// SubmitAt with their own cycle, so no clock side channel is needed.
func (c *hbmComponent) Idle(cycle int64) bool {
	return c.h.QuiescentAt(cycle)
}

// WakeHint implements sim.WakeHinter: left alone, the HBM's only future
// event is the oldest posted write crossing the age-out horizon.
// Everything else it does reacts to a submission, and submitters share
// identity state with it (SharedState), so they wake it as partners.
func (c *hbmComponent) WakeHint(cycle int64) int64 {
	return c.h.NextWriteEvent()
}

// SharedState implements sim.StateSharer: every DRAM node submitting to
// this HBM (and receiving completion callbacks from its Tick) must tick on
// the same worker.
func (c *hbmComponent) SharedState() []any { return []any{c.h} }

// HostsCallbacks implements sim.CallbackHost: this tick fires Done closures
// owned by submitting nodes, whose side effects can reach state those nodes
// share under other keys (e.g. a DRAMExpand adjusting its LoopCtl when an
// expansion kills a thread). The scheduler widens the wake set accordingly.
func (c *hbmComponent) HostsCallbacks() {}

// WorstCaseInternalLatency implements sim.LatencyBound: DRAM round trips
// are the longest link-invisible stretch in any graph.
func (c *hbmComponent) WorstCaseInternalLatency() int64 {
	return c.h.WorstCaseInternalLatency()
}
