package fabric

import (
	"errors"
	"testing"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// FuzzGraphCheck drives Graph.Check with byte-steered random topologies of
// real components and enforces the verifier's two-sided contract:
//
//   - it never panics, on any wiring, however mangled (the whole point of
//     a build-time verifier is to be callable on garbage);
//   - it is sound for the component set fuzzed here: a graph it accepts is
//     a DAG of Source/Map/Sink stages over positive-capacity registered
//     links (cycles are rejected for lacking a loop-entry Merge), and such
//     a graph provably drains — so an accepted graph that deadlocks or
//     exhausts a generous budget is a verifier bug, not bad luck.
//
// The decoder deliberately produces orphan links, fan-in without a Merge,
// dangling consumers, zero-capacity and zero-latency links, and cycles,
// alongside well-formed pipelines. Trailing bytes steer schema annotations
// (untyped / two compatible prefixes / a disjoint schema), so the corpus
// also reaches the schema checker's mismatch, width, and one-side-untyped
// paths; the committed seeds under testdata/fuzz/FuzzGraphCheck pin those
// shapes. Old seeds without typing bytes decode as fully untyped graphs.
func FuzzGraphCheck(f *testing.F) {
	// Seeds: a clean pipeline, a fan-in collision, a self-loop, garbage.
	f.Add([]byte{2, 9, 2, 9, 2, 1, 0, 1, 1, 2})
	f.Add([]byte{3, 9, 2, 0, 2, 9, 2, 2, 0, 0, 1, 0, 2, 1})
	f.Add([]byte{1, 9, 2, 1, 0, 0, 0})
	f.Add([]byte{0})
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	// Schema-typed seeds: a compatible prefix chain, a disjoint-schema
	// mismatch, a half-typed link (gradual typing must stay silent in
	// Check), and a reversed prefix (producer narrower than consumer).
	f.Add([]byte{1, 9, 2, 9, 2, 0, 2, 1, 0, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{1, 9, 2, 9, 2, 0, 3, 1, 0, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{1, 9, 2, 9, 2, 0, 0, 1, 0, 1, 1, 0, 1, 1, 0})
	f.Add([]byte{1, 9, 2, 9, 2, 0, 1, 1, 0, 1, 2, 1, 1, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}

		g := NewGraph()
		nLinks := int(next())%6 + 1
		links := make([]*sim.Link, nLinks)
		for i := range links {
			links[i] = g.Sys.NewLink(
				// Capacities 0..7 and latencies 0..3: zero values must be
				// caught, not crashed on.
				"l"+string(rune('0'+i)),
				int(next())%8,
				int(next())%4,
			)
		}
		pick := func() *sim.Link { return links[int(next())%nLinks] }
		// Schema palette: 0 leaves a port untyped (so old seeds, which run
		// out of bytes here, decode unchanged); sAB/sABC are prefix-
		// compatible in one direction only; sX matches nothing else.
		sAB := record.NewSchema("a", "b")
		sABC := record.NewSchema("a", "b", "c")
		sX := record.NewSchema("x")
		schema := func() *record.Schema {
			switch next() % 4 {
			case 1:
				return sAB
			case 2:
				return sABC
			case 3:
				return sX
			}
			return nil
		}

		recs := []record.Rec{record.Make(1, 2), record.Make(3, 4)}
		g.Add(NewSource("src", recs, pick()).Typed(schema()))
		nMaps := int(next()) % 5
		for i := 0; i < nMaps; i++ {
			g.Add(NewMap("m"+string(rune('0'+i)),
				func(r *record.Rec) {}, pick(), pick()).
				Typed(schema(), schema()))
		}
		if next()%4 != 0 { // usually, but not always, give the graph a sink
			g.Add(NewSink("snk", pick()).Typed(schema()))
		}

		err := g.Check()
		if err == nil {
			if _, rerr := g.Run(1_000_000); rerr != nil {
				t.Fatalf("Check accepted a graph that then failed: %v", rerr)
			}
			return
		}
		var ce *CheckError
		if !errors.As(err, &ce) || len(ce.Diags) == 0 {
			t.Fatalf("Check returned a non-CheckError or empty error: %v", err)
		}
		_ = ce.Error() // rendering must not panic either
	})
}
