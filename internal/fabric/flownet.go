package fabric

import (
	"aurochs/internal/analysis/flow"
	"aurochs/internal/record"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// FlowNet lowers the wired graph into the token-flow prover's abstract net
// (internal/analysis/flow): one node per component with its conservation
// class, loop-control identity, and internal-buffer bound; one edge per
// link with exactly one producer and one consumer (multi-ended links are
// Check errors and carry no flow semantics). The lowering is deterministic
// — components in registration order, links in creation order — so
// witnesses and occupancy reports are stable across runs.
func (g *Graph) FlowNet() *flow.Net {
	comps, ends := g.topology()
	net := &flow.Net{Lanes: record.NumLanes}

	// Loop controls get dense ids in first-encounter order over the
	// registered components.
	ctls := make(map[*LoopCtl]int)
	ctlID := func(c *LoopCtl) int {
		if c == nil {
			return -1
		}
		id, ok := ctls[c]
		if !ok {
			id = len(ctls)
			ctls[c] = id
		}
		return id
	}

	compIx := make(map[sim.Component]int, len(comps))
	for i, c := range comps {
		compIx[c] = i
	}
	skip := make([]bool, len(comps))

	for i, c := range comps {
		nd := flow.Node{Name: c.Name(), Ctl: -1, Pri: -1, Sec: -1, Supply: -1}
		switch v := c.(type) {
		case *Source:
			nd.Kind = flow.SourceKind
			nd.Supply = 0
			for _, vec := range v.vecs {
				nd.Supply += vec.Count()
			}
		case *DRAMScan:
			nd.Kind = flow.SourceKind
			if v.recWords > 0 {
				nd.Supply = 0
				for _, e := range v.extents {
					nd.Supply += e.Words / v.recWords
				}
			}
		case *Sink:
			nd.Kind = flow.SinkKind
		case *DRAMAppend:
			nd.Kind = flow.SinkKind
			nd.Resident = record.NumLanes
		case *Map:
			nd.Kind = flow.Transform
			nd.Resident = (PipelineDepth + 2) * record.NumLanes
		case *Filter:
			nd.Kind = flow.FilterKind
			nd.Ctl = ctlID(v.ctl)
			// Route may return -1; with a loop control those kills are
			// counted exits (drainPipe calls ctl.Exit). Without one the
			// wiring discipline is that the route never kills — see the
			// trust policy in DESIGN.md §14.
			nd.CanKill = v.ctl != nil
			nd.Resident = (PipelineDepth+2)*record.NumLanes + len(v.outs)*3*record.NumLanes
		case *Merge:
			nd.Kind = flow.MergeKind
			nd.LoopEntry = v.ctl != nil
			nd.Ctl = ctlID(v.ctl)
			nd.Resident = 2*record.NumLanes - 1
		case *Fork:
			nd.Kind = flow.ForkKind
			nd.Amplify = true
			nd.Ctl = ctlID(v.ctl)
			nd.CanKill = v.ctl != nil
			nd.Resident = 4 * record.NumLanes
		case *DRAMExpand:
			nd.Kind = flow.ForkKind
			nd.Amplify = true
			nd.Ctl = ctlID(v.ctl)
			nd.CanKill = v.ctl != nil
			nd.Resident = v.maxOutstanding + 4*record.NumLanes
		case *DRAMExpand2:
			nd.Kind = flow.ForkKind
			nd.Amplify = true
			nd.Ctl = ctlID(v.ctl)
			nd.CanKill = v.ctl != nil
			nd.Resident = v.maxOutstanding + 4*record.NumLanes
		case *DRAMNode:
			nd.Kind = flow.Transform
			nd.Lossy = v.spec.Lossy
			nd.LossyWaiver = v.spec.LossyWaiver
			nd.Resident = v.maxOutstanding + 4*record.NumLanes
		case *spad.Tile:
			nd.Kind = flow.Transform
			nd.Lossy, nd.LossyWaiver = v.LossyDecl()
			nd.Resident = v.ResidentBound()
		case *SpillQueue:
			nd.Kind = flow.Transform
			nd.Elastic = true
			nd.Resident = v.onchip
		case *OrderedMerge:
			nd.Kind = flow.Transform
			nd.Resident = 2 * record.NumLanes * len(v.ins)
		case *MergeJoin:
			// A join emits one record per key match: more output than input
			// when keys repeat on both sides.
			nd.Kind = flow.Transform
			nd.Amplify = true
			nd.Resident = 6 * record.NumLanes
		case *hbmComponent:
			skip[i] = true // passive clock; no record ports
		default:
			nd.Kind = flow.Opaque
		}
		net.Nodes = append(net.Nodes, nd)
	}

	// One edge per single-producer/single-consumer link, in link creation
	// order; remember each link's edge id for port annotation.
	edgeOf := make(map[*sim.Link]int)
	for _, l := range g.Sys.Links() {
		e := ends[l]
		if e == nil || len(e.producers) != 1 || len(e.consumers) != 1 {
			continue
		}
		p, c := e.producers[0], e.consumers[0]
		if skip[p] || skip[c] {
			continue
		}
		edgeOf[l] = len(net.Edges)
		net.Edges = append(net.Edges, flow.Edge{
			Name: l.Name(), From: p, To: c,
			Cap: l.Capacity(), Lat: l.Latency(),
		})
	}
	edgeFor := func(l *sim.Link) int {
		if l == nil {
			return -1
		}
		if ei, ok := edgeOf[l]; ok {
			return ei
		}
		return -1
	}

	for i, c := range comps {
		if skip[i] {
			continue
		}
		nd := &net.Nodes[i]
		switch v := c.(type) {
		case *Filter:
			// Per-output ports preserve the Exit declarations; a nil link is
			// a kill port.
			for _, o := range v.outs {
				nd.Out = append(nd.Out, flow.Port{Edge: edgeFor(o.Link), Exit: o.Exit})
			}
		case *Merge:
			nd.Pri, nd.Sec = edgeFor(v.pri), edgeFor(v.sec)
			if ei := edgeFor(v.out); ei >= 0 {
				nd.Out = append(nd.Out, flow.Port{Edge: ei})
			}
		default:
			if op, ok := c.(sim.OutputPorts); ok {
				claimed := make(map[*sim.Link]bool)
				for _, l := range op.OutputLinks() {
					if ei := edgeFor(l); ei >= 0 && !claimed[l] {
						claimed[l] = true
						nd.Out = append(nd.Out, flow.Port{Edge: ei})
					}
				}
			}
		}
		if ip, ok := c.(sim.InputPorts); ok {
			claimed := make(map[*sim.Link]bool)
			for _, l := range ip.InputLinks() {
				if ei := edgeFor(l); ei >= 0 && !claimed[l] {
					claimed[l] = true
					nd.In = append(nd.In, flow.Port{Edge: ei})
				}
			}
		}
	}
	return net
}

// ProveFlow runs the token-flow prover over the wired graph. Unlike
// ProveWith it does not require Check to pass first: the prover is
// deliberately total, so Check-rejected shapes (a swapped LoopMerge, an
// uncounted side entrance) still get their findings and witnesses — that
// is what lets the replay harness drive them differentially.
func (g *Graph) ProveFlow() *flow.Report {
	return flow.Prove(g.FlowNet())
}
