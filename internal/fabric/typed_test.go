package fabric

import (
	"strings"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/sim"
	"aurochs/internal/spad"
)

// pipe wires src -> snk over one link and returns the graph plus both ends,
// so each schema test can type the ends differently.
func pipe() (*Graph, *Source, *Sink) {
	g := NewGraph()
	l := g.Link("l")
	src := NewSource("src", oneRec, l)
	snk := NewSink("snk", l)
	g.Add(src)
	g.Add(snk)
	return g, src, snk
}

// TestCheckSchemaMismatch: a producer that guarantees less than the
// consumer requires is a hard Check error (acceptance: seeded schema
// mismatches must be rejected, not warned about).
func TestCheckSchemaMismatch(t *testing.T) {
	cases := []struct {
		name     string
		prod     *record.Schema
		cons     *record.Schema
		mismatch bool
	}{
		{"identical", record.NewSchema("k", "v"), record.NewSchema("k", "v"), false},
		{"wide to narrow prefix", record.NewSchema("k", "v", "x"), record.NewSchema("k", "v"), false},
		{"narrow to wide", record.NewSchema("k"), record.NewSchema("k", "v"), true},
		{"renamed field", record.NewSchema("k", "v"), record.NewSchema("k", "w"), true},
		{"reordered fields", record.NewSchema("v", "k"), record.NewSchema("k", "v"), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, src, snk := pipe()
			src.Typed(tc.prod)
			snk.Typed(tc.cons)
			err := g.Check()
			if !tc.mismatch {
				if err != nil {
					t.Fatalf("compatible schemas rejected: %v", err)
				}
				return
			}
			ce, ok := err.(*CheckError)
			if !ok || !ce.Has(DiagSchemaMismatch) {
				t.Fatalf("want %s, got %v", DiagSchemaMismatch, err)
			}
			if !strings.Contains(err.Error(), "src") || !strings.Contains(err.Error(), "snk") {
				t.Errorf("diagnostic does not name both endpoints:\n%v", err)
			}
		})
	}
}

// TestCheckSchemaOneSideUntyped: typing only one end of a link is allowed —
// Check stays silent (gradual typing); only ProveWith(RequireSchemas)
// complains.
func TestCheckSchemaOneSideUntyped(t *testing.T) {
	g, src, _ := pipe()
	src.Typed(record.NewSchema("k"))
	if err := g.Check(); err != nil {
		t.Fatalf("half-typed link rejected by Check: %v", err)
	}
}

// TestProveRequireSchemasWarnsUntyped: strict proving flags every link that
// is not schema-checked end to end, naming the untyped side.
func TestProveRequireSchemasWarnsUntyped(t *testing.T) {
	g, src, _ := pipe()
	src.Typed(record.NewSchema("k"))

	rep, err := g.Prove() // default mode: untyped links are fine
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("default prove warned on a half-typed link:\n%s", rep)
	}

	rep, err = g.ProveWith(ProveOptions{RequireSchemas: true})
	if err != nil {
		t.Fatalf("prove strict: %v", err)
	}
	if rep.Clean() {
		t.Fatal("RequireSchemas accepted a half-typed link")
	}
	found := false
	for _, w := range rep.Warnings {
		if w.Code == DiagUntypedLink && strings.Contains(w.Msg, "snk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no %s warning naming the untyped consumer:\n%s", DiagUntypedLink, rep)
	}
}

// TestProveSchemaFacts: a fully typed link yields a positive
// schema-compatible proof in the report.
func TestProveSchemaFacts(t *testing.T) {
	g, src, snk := pipe()
	s := record.NewSchema("k", "v")
	src.Typed(s)
	snk.Typed(s)
	rep, err := g.ProveWith(ProveOptions{RequireSchemas: true})
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("typed pipe not clean:\n%s", rep)
	}
	found := false
	for _, p := range rep.Proofs {
		if strings.Contains(p.Property, "schema-compatible") && strings.Contains(p.Property, "k, v") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no schema-compatible proof:\n%s", rep)
	}
}

// TestWidenOverflowIsCheckDefect: widening past record.MaxFields is
// recorded as a graph defect (DiagSchemaWidth) instead of panicking at
// wiring time — the kernel author sees it with every other diagnostic.
func TestWidenOverflowIsCheckDefect(t *testing.T) {
	g, src, snk := pipe()
	names := make([]string, record.MaxFields)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	full := record.NewSchema(names...)
	wider := g.Widen(full, "overflow")
	if wider != full {
		t.Fatal("overflowing Widen must fall back to the original schema")
	}
	src.Typed(full)
	snk.Typed(full)
	err := g.Check()
	ce, ok := err.(*CheckError)
	if !ok || !ce.Has(DiagSchemaWidth) {
		t.Fatalf("want %s, got %v", DiagSchemaWidth, err)
	}
}

// badPorts declares a schema list that is not parallel to its link list.
type badPorts struct {
	in, out *sim.Link
}

func (b *badPorts) Name() string                    { return "bad" }
func (b *badPorts) Tick(int64)                      {}
func (b *badPorts) Done() bool                      { return true }
func (b *badPorts) InputLinks() []*sim.Link         { return []*sim.Link{b.in} }
func (b *badPorts) OutputLinks() []*sim.Link        { return []*sim.Link{b.out} }
func (b *badPorts) OutputSchemas() []*record.Schema { return nil }
func (b *badPorts) InputSchemas() []*record.Schema {
	return []*record.Schema{record.NewSchema("k"), record.NewSchema("v")} // 2 schemas, 1 link
}

// TestCheckSchemaPortsParity: a TypedPorts implementation whose schema list
// does not parallel its link list is itself defective.
func TestCheckSchemaPortsParity(t *testing.T) {
	g := NewGraph()
	l, o := g.Link("l"), g.Link("o")
	g.Add(NewSource("src", oneRec, l))
	g.Add(&badPorts{in: l, out: o})
	g.Add(NewSink("snk", o))
	err := g.Check()
	ce, ok := err.(*CheckError)
	if !ok || !ce.Has(DiagSchemaPorts) {
		t.Fatalf("want %s, got %v", DiagSchemaPorts, err)
	}
}

// orderGraph wires src -> DRAMNode(spec) -> snk for reorder-contract tests.
func orderGraph(spec spad.Spec) *Graph {
	g := NewGraph()
	g.AttachHBM(dram.New(dram.DefaultConfig()))
	in, out := g.Link("in"), g.Link("out")
	g.Add(NewSource("src", oneRec, in))
	NewDRAMNode(g, "rmw", spec, in, out)
	g.Add(NewSink("snk", out))
	return g
}

func plainWrite() spad.Spec {
	return spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(0) },
	}
}

// TestCheckOrderDependent: an unwaived order-dependent RMW behind a
// reordering node is a hard Check error (acceptance: seeded order-dependent
// combiners must be rejected); DisjointAddrs or an explicit waiver clears
// it.
func TestCheckOrderDependent(t *testing.T) {
	// Seeded defect: last-write-wins scatter with no disjointness claim.
	err := orderGraph(plainWrite()).Check()
	ce, ok := err.(*CheckError)
	if !ok || !ce.Has(DiagOrderDependent) {
		t.Fatalf("want %s, got %v", DiagOrderDependent, err)
	}
	if !strings.Contains(err.Error(), "rmw") {
		t.Errorf("diagnostic does not name the node:\n%v", err)
	}

	// Disjoint addresses lift the write to commutative.
	disjoint := plainWrite()
	disjoint.DisjointAddrs = true
	if err := orderGraph(disjoint).Check(); err != nil {
		t.Fatalf("disjoint write rejected: %v", err)
	}

	// An explicit waiver passes Check but surfaces in the proof report.
	waived := plainWrite()
	waived.OrderWaiver = "test: single writer"
	g := orderGraph(waived)
	if err := g.Check(); err != nil {
		t.Fatalf("waived write rejected: %v", err)
	}
	rep, err := g.Prove()
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	if len(rep.Waived) != 1 || !strings.Contains(rep.Waived[0].Msg, "single writer") {
		t.Fatalf("waiver not surfaced in report:\n%s", rep)
	}
	if !rep.Clean() {
		t.Fatalf("waived graph not clean:\n%s", rep)
	}
}

// TestProveReorderFacts: commutative and pure effects come out of Prove
// with positive reorder-safety facts.
func TestProveReorderFacts(t *testing.T) {
	faa := spad.Spec{
		Op:   spad.OpFAA,
		Addr: func(r *record.Rec) uint32 { return 0 },
		Data: func(*record.Rec, int) uint32 { return 1 },
	}
	rep, err := orderGraph(faa).Prove()
	if err != nil {
		t.Fatalf("prove: %v", err)
	}
	found := false
	for _, p := range rep.Proofs {
		if strings.Contains(p.Property, "reorder-safe") && strings.Contains(p.Property, "commutative") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no reorder-safe proof for FAA:\n%s", rep)
	}
}

// TestTileReorderContract: a spad tile carries its Spec's classification
// through sim.ReorderSemantics, and InOrder tiles never claim to reorder.
func TestTileReorderContract(t *testing.T) {
	mem := spad.NewMem(16, 16, 1)
	spec := spad.Spec{
		Op:   spad.OpFAA,
		Addr: func(r *record.Rec) uint32 { return 0 },
		Data: func(*record.Rec, int) uint32 { return 1 },
	}
	cfg := spad.DefaultConfig("t")
	tile := spad.NewTile(cfg, mem, spec, nil, nil, sim.NewStats())
	decl := tile.Reordering()
	if decl.Class != sim.ReorderCommutative || !decl.Reorders {
		t.Fatalf("default tile decl = %+v, want commutative+reorders", decl)
	}
	cfg.InOrder = true
	inorder := spad.NewTile(cfg, mem, spec, nil, nil, sim.NewStats())
	if d := inorder.Reordering(); d.Reorders {
		t.Fatalf("in-order tile claims to reorder: %+v", d)
	}
}
