package fabric

import (
	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// Extent is a dense run of words in DRAM.
type Extent struct {
	Addr  uint32
	Words int
}

// DRAMScan streams records out of a list of DRAM extents: the dense-read
// path used to load partitions, LSM runs, and table columns. Each extent is
// fetched with wide sequential reads (row-buffer friendly), then chopped
// into recWords-sized records emitted at up to one vector per cycle.
type DRAMScan struct {
	name     string
	h        *dram.HBM
	extents  []Extent
	recWords int
	out      *sim.Link

	chunks      []Extent // extents chopped to queue-friendly requests
	next        int
	outstanding int
	completed   map[int][]uint32 // chunk seq -> data, awaiting in-order append
	appendNext  int
	buf         []uint32
	bufHead     int // consumed prefix of buf; compacted, never resliced away
	eos         bool
	schema      *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

// scanChunkWords bounds one DRAM request from a scan: small enough that a
// request always fits the channel queues, large enough to stay row-buffer
// friendly.
const scanChunkWords = 512

// NewDRAMScan builds a scan over extents, emitting recWords-word records.
func NewDRAMScan(g *Graph, name string, extents []Extent, recWords int, out *sim.Link) *DRAMScan {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	if recWords <= 0 || recWords > record.MaxFields {
		panic("fabric: scan recWords out of range")
	}
	s := &DRAMScan{name: name, h: g.HBM, extents: extents, recWords: recWords, out: out,
		completed: make(map[int][]uint32)}
	for _, e := range extents {
		for off := 0; off < e.Words; off += scanChunkWords {
			n := e.Words - off
			if n > scanChunkWords {
				n = scanChunkWords
			}
			s.chunks = append(s.chunks, Extent{Addr: e.Addr + uint32(off), Words: n})
		}
	}
	g.Add(s)
	return s
}

// Name implements sim.Component.
func (s *DRAMScan) Name() string { return s.name }

// OutputLinks implements sim.OutputPorts.
func (s *DRAMScan) OutputLinks() []*sim.Link { return []*sim.Link{s.out} }

// Done implements sim.Component.
func (s *DRAMScan) Done() bool { return s.eos }

// buffered returns the word count awaiting record assembly.
func (s *DRAMScan) buffered() int { return len(s.buf) - s.bufHead }

// Idle implements sim.Idler: mirrors Tick's issue/emit/EOS conditions.
func (s *DRAMScan) Idle(int64) bool {
	if s.next < len(s.chunks) && s.outstanding < 8 && s.buffered() < 4096 {
		return false
	}
	if s.buffered() >= s.recWords && s.out.CanPush() {
		return false
	}
	if !s.eos && s.next == len(s.chunks) && s.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: the HBM fires this node's
// completion callbacks.
func (s *DRAMScan) SharedState() []any { return []any{s.h} }

// WakeHint implements sim.WakeHinter: no self-timed events — progress
// comes from HBM completions (shared-state partner) and link credit.
func (s *DRAMScan) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (s *DRAMScan) Tick(cycle int64) {
	// Issue chunk reads while the reorder window has room. Completions
	// may arrive out of order across channels; they append to the stream
	// strictly in sequence.
	for s.next < len(s.chunks) && s.outstanding < 8 && s.buffered() < 4096 {
		ext := s.chunks[s.next]
		seq := s.next
		if !s.h.SubmitAt(cycle, dram.Request{Addr: ext.Addr, Words: ext.Words, Done: func(data []uint32) { // lint:hotalloc-ok per-chunk closure, amortized over the DRAM round trip
			s.outstanding--
			// The reorder window holds at most 8 chunks; map buckets are
			// reused after delete, and buf is compacted below so its
			// capacity is reused once it reaches steady state.
			s.completed[seq] = data // lint:hotalloc-ok bounded reorder window, buckets reused after delete
			for d, ok := s.completed[s.appendNext]; ok; d, ok = s.completed[s.appendNext] {
				s.buf = append(s.buf, d...) // lint:hotalloc-ok warmup growth, buf compacted and reused at steady state
				delete(s.completed, s.appendNext)
				s.appendNext++
			}
		}}) {
			break
		}
		s.next++
		s.outstanding++
	}
	// Emit one vector per cycle from buffered words. The staged vector is
	// filled in place; consumed words advance bufHead and the buffer is
	// compacted so its capacity is reused instead of reallocated.
	if s.buffered() >= s.recWords && s.out.CanPush() {
		v := s.out.StageVec(cycle)
		for s.buffered() >= s.recWords && v.Count() < record.NumLanes {
			var r record.Rec
			for i := 0; i < s.recWords; i++ {
				r = r.Append(s.buf[s.bufHead+i])
			}
			s.bufHead += s.recWords
			v.Push(r)
		}
	}
	if s.bufHead == len(s.buf) {
		s.buf, s.bufHead = s.buf[:0], 0
	} else if s.bufHead >= 4096 {
		s.buf, s.bufHead = s.buf[:copy(s.buf, s.buf[s.bufHead:])], 0
	}
	if !s.eos && s.next == len(s.chunks) && s.outstanding == 0 && s.buffered() < s.recWords && s.out.CanPush() {
		// Trailing words smaller than a record are padding; drop them.
		s.buf, s.bufHead = s.buf[:0], 0
		s.out.PushEOS(cycle)
		s.eos = true
	}
}

// DRAMAppend materializes a record stream densely into DRAM starting at
// Base: the append-only write path of sorted runs, join outputs, and spill
// buffers. Writes are buffered into burst-sized chunks so the traffic stays
// sequential.
type DRAMAppend struct {
	name     string
	h        *dram.HBM
	base     uint32
	recWords int
	in       *sim.Link

	written     uint32 // words flushed or buffered
	buf         []uint32
	outstanding int
	eosIn       bool
	eos         bool
	count       int
	schema      *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

// NewDRAMAppend builds an appending writer at base.
func NewDRAMAppend(g *Graph, name string, base uint32, recWords int, in *sim.Link) *DRAMAppend {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	a := &DRAMAppend{name: name, h: g.HBM, base: base, recWords: recWords, in: in}
	g.Add(a)
	return a
}

// Name implements sim.Component.
func (a *DRAMAppend) Name() string { return a.name }

// InputLinks implements sim.InputPorts.
func (a *DRAMAppend) InputLinks() []*sim.Link { return []*sim.Link{a.in} }

// Done implements sim.Component.
func (a *DRAMAppend) Done() bool { return a.eos }

// Count returns the records written.
func (a *DRAMAppend) Count() int { return a.count }

// Words returns the total words appended.
func (a *DRAMAppend) Words() uint32 { return a.written }

// Idle implements sim.Idler: mirrors Tick's accept/flush/EOS conditions.
func (a *DRAMAppend) Idle(int64) bool {
	if !a.eosIn && !a.in.Empty() && a.outstanding < 8 {
		return false
	}
	if len(a.buf) >= 256 || (a.eosIn && len(a.buf) > 0) {
		return false
	}
	if a.eosIn && !a.eos && a.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: the HBM fires this node's
// completion callbacks.
func (a *DRAMAppend) SharedState() []any { return []any{a.h} }

// WakeHint implements sim.WakeHinter: no self-timed events — progress
// comes from link flits and HBM completions (shared-state partner).
func (a *DRAMAppend) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (a *DRAMAppend) Tick(cycle int64) {
	if !a.eosIn && !a.in.Empty() && a.outstanding < 8 {
		f := a.in.Pop()
		if f.EOS {
			a.eosIn = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if !f.Vec.Valid(i) {
					continue
				}
				r := f.Vec.Lane[i]
				for k := 0; k < a.recWords; k++ {
					// Staging buffer: compacted after each flush below, so
					// the capacity is reused at steady state.
					a.buf = append(a.buf, r.Get(k)) // lint:hotalloc-ok warmup growth, compacted and reused after flush
				}
				a.count++
			}
		}
	}
	// Flush in 1 KiB chunks (or whatever remains at EOS). SubmitAt
	// consumes write payloads synchronously, so chunks are sliced straight
	// out of the staging buffer — no copy — and the consumed prefix is
	// compacted afterwards so the buffer's capacity is reused.
	const chunk = 256
	head := 0
	for len(a.buf)-head >= chunk || (a.eosIn && len(a.buf)-head > 0) {
		n := len(a.buf) - head
		if n > chunk {
			n = chunk
		}
		if !a.h.SubmitAt(cycle, dram.Request{
			Addr: a.base + a.written, Words: n, Write: true, Data: a.buf[head : head+n],
			Done: func([]uint32) { a.outstanding-- }, // lint:hotalloc-ok per-chunk closure, amortized over the 256-word flush
		}) {
			break
		}
		a.outstanding++
		a.written += uint32(n)
		head += n
	}
	if head > 0 {
		a.buf = a.buf[:copy(a.buf, a.buf[head:])]
	}
	if a.eosIn && !a.eos && len(a.buf) == 0 && a.outstanding == 0 {
		a.eos = true
	}
}
