package fabric

import (
	"errors"
	"strings"
	"testing"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// oneRec is a minimal payload for wiring tests.
var oneRec = []record.Rec{record.Make(1)}

// TestCheckRejectsMalformedGraphs: one deliberately broken graph per defect
// class, each asserting its distinct diagnostic code.
func TestCheckRejectsMalformedGraphs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
		want  DiagCode
	}{
		{
			name: "orphan link",
			want: DiagOrphanLink,
			build: func() *Graph {
				g := NewGraph()
				l := g.Link("wired")
				g.Add(NewSource("src", oneRec, l))
				g.Add(NewSink("snk", l))
				g.Link("dangling") // created, never connected
				return g
			},
		},
		{
			name: "no producer",
			want: DiagNoProducer,
			build: func() *Graph {
				g := NewGraph()
				g.Add(NewSink("snk", g.Link("starved")))
				return g
			},
		},
		{
			name: "no consumer: sink never added",
			want: DiagNoConsumer,
			build: func() *Graph {
				g := NewGraph()
				l := g.Link("out")
				g.Add(NewSource("src", oneRec, l))
				NewSink("snk", l) // forgot g.Add
				return g
			},
		},
		{
			name: "fan-in without a merge",
			want: DiagMultiProducer,
			build: func() *Graph {
				g := NewGraph()
				l := g.Link("shared")
				g.Add(NewSource("a", oneRec, l))
				g.Add(NewSource("b", oneRec, l))
				g.Add(NewSink("snk", l))
				return g
			},
		},
		{
			name: "fan-out without a fork",
			want: DiagMultiConsumer,
			build: func() *Graph {
				g := NewGraph()
				l := g.Link("shared")
				g.Add(NewSource("src", oneRec, l))
				g.Add(NewSink("a", l))
				g.Add(NewSink("b", l))
				return g
			},
		},
		{
			name: "zero capacity link",
			want: DiagZeroCapacity,
			build: func() *Graph {
				g := NewGraph()
				l := g.Sys.NewLink("z", 0, 1)
				g.Add(NewSource("src", oneRec, l))
				g.Add(NewSink("snk", l))
				return g
			},
		},
		{
			name: "unregistered link latency",
			want: DiagBadLatency,
			build: func() *Graph {
				g := NewGraph()
				l := g.Sys.NewLink("combinational", 8, 0)
				g.Add(NewSource("src", oneRec, l))
				g.Add(NewSink("snk", l))
				return g
			},
		},
		{
			name: "cycle without a loop merge",
			want: DiagNoLoopCtl,
			build: func() *Graph {
				g := NewGraph()
				a, b := g.Link("a"), g.Link("b")
				g.Add(NewMap("m1", func(r *record.Rec) {}, a, b))
				g.Add(NewMap("m2", func(r *record.Rec) {}, b, a))
				return g
			},
		},
		{
			name: "plain merge does not bless a cycle",
			want: DiagNoLoopCtl,
			build: func() *Graph {
				g := NewGraph()
				ext, body, recirc, exit := g.Link("ext"), g.Link("body"), g.Link("recirc"), g.Link("exit")
				g.Add(NewSource("src", oneRec, ext))
				// NewMerge, not NewLoopMerge: no drain protocol on the cycle.
				g.Add(NewMerge("entry", recirc, ext, body))
				g.Add(NewFilter("exit?", func(r *record.Rec) int { return 0 }, body, []Output{
					{Link: exit, Exit: true},
					{Link: recirc, NoEOS: true},
				}, nil))
				g.Add(NewSink("snk", exit))
				return g
			},
		},
		{
			name: "dram scan without hbm",
			want: DiagNoHBM,
			build: func() *Graph {
				g := NewGraph()
				out := g.Link("out")
				NewDRAMScan(g, "scan", []Extent{{Addr: 0, Words: 64}}, 1, out)
				g.Add(NewSink("snk", out))
				return g
			},
		},
		{
			name: "node added twice",
			want: DiagDupNode,
			build: func() *Graph {
				g := NewGraph()
				l := g.Link("l")
				g.Add(NewSource("src", oneRec, l))
				snk := NewSink("snk", l)
				g.Add(snk)
				g.Add(snk)
				return g
			},
		},
		{
			name: "name collision",
			want: DiagDupName,
			build: func() *Graph {
				g := NewGraph()
				a, b := g.Link("a"), g.Link("b")
				g.Add(NewSource("same", oneRec, a))
				g.Add(NewSource("same", oneRec, b))
				g.Add(NewSink("sa", a))
				g.Add(NewSink("sb", b))
				return g
			},
		},
		{
			name: "nil port link",
			want: DiagNilLink,
			build: func() *Graph {
				g := NewGraph()
				l := g.Link("l")
				g.Add(NewSource("src", oneRec, l))
				g.Add(NewMap("m", func(r *record.Rec) {}, l, nil))
				return g
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			err := g.Check()
			if err == nil {
				t.Fatalf("Check accepted a graph with a %s defect", tc.want)
			}
			ce, ok := err.(*CheckError)
			if !ok {
				t.Fatalf("Check returned %T, want *CheckError", err)
			}
			if !ce.Has(tc.want) {
				t.Fatalf("Check missed %s; reported:\n%v", tc.want, err)
			}
		})
	}
}

// TestCheckAcceptsWellFormedLoop: the canonical countdown loop — the shape
// every kernel's recirculating pipeline takes — passes Check.
func TestCheckAcceptsWellFormedLoop(t *testing.T) {
	g := NewGraph()
	ext, body, dec, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("dec"), g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", []record.Rec{record.Make(0, 3)}, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewMap("dec", func(r *record.Rec) {}, body, dec).Cyclic())
	g.Add(NewFilter("exit?", func(r *record.Rec) int { return 0 }, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	g.Add(NewSink("snk", exit))
	if err := g.Check(); err != nil {
		t.Fatalf("well-formed loop rejected: %v", err)
	}
}

// TestCheckReportsEveryDefectAtOnce: diagnostics accumulate — a graph with
// several independent bugs reports all of them in one deterministic pass.
func TestCheckReportsEveryDefectAtOnce(t *testing.T) {
	g := NewGraph()
	g.Link("dangling")
	g.Add(NewSink("snk", g.Link("starved")))
	out := g.Link("unread")
	g.Add(NewSource("src", oneRec, out))

	err := g.Check()
	ce, ok := err.(*CheckError)
	if !ok {
		t.Fatalf("want *CheckError, got %v", err)
	}
	for _, code := range []DiagCode{DiagOrphanLink, DiagNoProducer, DiagNoConsumer} {
		if !ce.Has(code) {
			t.Errorf("missing %s in:\n%v", code, err)
		}
	}
	// Deterministic ordering: a second pass renders identically.
	if err2 := g.Check(); err2.Error() != err.Error() {
		t.Error("Check output is not deterministic across passes")
	}
}

// TestRunRefusesMalformedGraph: Run must reject before the first cycle —
// the sink sees no data and the returned cycle count is zero.
func TestRunRefusesMalformedGraph(t *testing.T) {
	g := NewGraph()
	l := g.Link("l")
	g.Add(NewSource("src", oneRec, l))
	snk := NewSink("snk", l)
	g.Add(snk)
	g.Link("dangling")
	cycles, err := g.Run(1000)
	var ce *CheckError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CheckError, got %v", err)
	}
	if cycles != 0 || snk.Count() != 0 {
		t.Fatalf("simulation ran despite failed check: cycles=%d recs=%d", cycles, snk.Count())
	}
	if !strings.Contains(err.Error(), "dangling") {
		t.Errorf("diagnostic does not name the offending link:\n%v", err)
	}
}

// TestCheckIgnoresPortlessComponents: components implementing neither port
// interface (like the HBM clock adapter) are link-free, not errors.
func TestCheckIgnoresPortlessComponents(t *testing.T) {
	g := NewGraph()
	l := g.Link("l")
	g.Add(NewSource("src", oneRec, l))
	g.Add(NewSink("snk", l))
	g.Add(portless{})
	if err := g.Check(); err != nil {
		t.Fatalf("portless component rejected: %v", err)
	}
}

type portless struct{}

func (portless) Name() string { return "portless" }
func (portless) Tick(int64)   {}
func (portless) Done() bool   { return true }

var _ sim.Component = portless{}
