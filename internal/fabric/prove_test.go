package fabric

import (
	"strings"
	"testing"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// countdownLoop wires the canonical recirculating pipeline with mkLink
// supplying every link, so tests can vary provisioning without repeating
// the topology. swap reverses the NewLoopMerge recirc/ext arguments to
// seed the miswire defect.
func countdownLoop(g *Graph, mkLink func(string) *sim.Link, swap bool) *Sink {
	ext, body, dec, exit, recirc :=
		mkLink("ext"), mkLink("body"), mkLink("dec"), mkLink("exit"), mkLink("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", []record.Rec{record.Make(0, 3), record.Make(1, 5)}, ext))
	if swap {
		g.Add(NewLoopMerge("entry", ext, recirc, body, ctl))
	} else {
		g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	}
	g.Add(NewMap("dec", func(r *record.Rec) {
		if c := r.Get(1); c > 0 {
			r.Put(1, c-1)
		}
	}, body, dec).Cyclic())
	g.Add(NewFilter("exit?", func(r *record.Rec) int {
		if r.Get(1) == 0 {
			return 0
		}
		return 1
	}, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	snk := NewSink("snk", exit)
	g.Add(snk)
	return snk
}

// TestProveWellProvisionedLoop: at the default capacity/latency every
// obligation is proven — full line rate on each link and credit
// sufficiency around the cycle — with zero warnings.
func TestProveWellProvisionedLoop(t *testing.T) {
	g := NewGraph()
	countdownLoop(g, g.Link, false)
	report, err := g.Prove()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("default provisioning should prove clean:\n%s", report)
	}
	// 5 link proofs + 1 cycle proof.
	if len(report.Proofs) != 6 {
		t.Fatalf("want 6 proofs, got %d:\n%s", len(report.Proofs), report)
	}
	var sawCycle bool
	for _, p := range report.Proofs {
		if strings.HasPrefix(p.Subject, "cycle [") &&
			strings.Contains(p.Property, "credit-sufficient") {
			sawCycle = true
		}
	}
	if !sawCycle {
		t.Fatalf("no credit-sufficiency proof for the cycle:\n%s", report)
	}
}

// TestProveUnderProvisionedLoop: the seeded violation — every link at
// capacity 1 with latency 1 — is caught as both a per-link line-rate
// warning and a cycle credit-starvation warning, while the graph remains
// structurally sound (Check passes) and still drains when run.
func TestProveUnderProvisionedLoop(t *testing.T) {
	g := NewGraph()
	mk := func(name string) *sim.Link { return g.Sys.NewLink(name, 1, 1) }
	snk := countdownLoop(g, mk, false)

	report, err := g.Prove()
	if err != nil {
		t.Fatalf("under-provisioning must not be a structural error: %v", err)
	}
	lineRate, starved := 0, 0
	for _, w := range report.Warnings {
		switch w.Code {
		case DiagLineRate:
			lineRate++
		case DiagCreditStarved:
			starved++
		}
	}
	if lineRate != 5 {
		t.Errorf("want 5 line-rate warnings (one per link), got %d:\n%s", lineRate, report)
	}
	if starved != 1 {
		t.Errorf("want 1 credit-starved warning for the cycle, got %d:\n%s", starved, report)
	}
	// The warnings are performance facts, not deadlocks: the loop drains.
	if _, err := g.Run(1_000_000); err != nil {
		t.Fatalf("starved loop must still drain: %v", err)
	}
	if snk.Count() != 2 {
		t.Fatalf("exits=%d, want 2", snk.Count())
	}
}

// TestProveAcyclicPipeline: a straight-line graph yields the acyclicity
// proof and no cycle obligations.
func TestProveAcyclicPipeline(t *testing.T) {
	g := NewGraph()
	in, out := g.Link("in"), g.Link("out")
	g.Add(NewSource("src", []record.Rec{record.Make(0, 0)}, in))
	g.Add(NewMap("id", func(r *record.Rec) {}, in, out))
	g.Add(NewSink("snk", out))
	report, err := g.Prove()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Clean() {
		t.Fatalf("acyclic default-provisioned graph should be clean:\n%s", report)
	}
	found := false
	for _, p := range report.Proofs {
		if p.Subject == "graph" && strings.Contains(p.Property, "acyclic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing acyclicity proof:\n%s", report)
	}
}

// TestCheckRejectsSwappedLoopMerge: reversing the recirc/ext arguments of
// NewLoopMerge is the provable-deadlock topology DiagLoopEntryMiswired
// exists for — the drain protocol counts entries on the wrong stream, so
// it must be rejected before the first cycle ticks.
func TestCheckRejectsSwappedLoopMerge(t *testing.T) {
	g := NewGraph()
	countdownLoop(g, g.Link, true)
	err := g.Check()
	ce, ok := err.(*CheckError)
	if !ok {
		t.Fatalf("swapped loop merge must fail Check, got %v", err)
	}
	if !ce.Has(DiagLoopEntryMiswired) {
		t.Fatalf("want %s, got:\n%v", DiagLoopEntryMiswired, err)
	}
	// Prove refuses to issue proofs about an unsound graph.
	if report, perr := g.Prove(); perr == nil {
		t.Fatalf("Prove accepted a miswired graph:\n%s", report)
	}
}

// TestCheckRejectsAcyclicLoopMerge: a NewLoopMerge whose cycle never
// closed (the recirculating producer was left out) waits forever on an
// impossible drain; Check names the defect directly instead of leaving a
// bare no-producer to puzzle over.
func TestCheckRejectsAcyclicLoopMerge(t *testing.T) {
	g := NewGraph()
	ext, body, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", []record.Rec{record.Make(0, 0)}, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	// The filter routes everything out: recirc has no producer, the loop
	// never closes.
	g.Add(NewFilter("exit?", func(r *record.Rec) int { return 0 }, body, []Output{
		{Link: exit, Exit: true},
	}, ctl))
	g.Add(NewSink("snk", exit))
	_ = recirc
	err := g.Check()
	ce, ok := err.(*CheckError)
	if !ok {
		t.Fatalf("acyclic loop merge must fail Check, got %v", err)
	}
	if !ce.Has(DiagLoopEntryMiswired) {
		t.Fatalf("want %s, got:\n%v", DiagLoopEntryMiswired, err)
	}
}
