package fabric

import (
	"sort"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/spad"
)

func seqRecs(n int) []record.Rec {
	recs := make([]record.Rec, n)
	for i := range recs {
		recs[i] = record.Make(uint32(i))
	}
	return recs
}

func sortedField0(recs []record.Rec) []uint32 {
	out := make([]uint32, len(recs))
	for i, r := range recs {
		out[i] = r.Get(0)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSourceMapSink(t *testing.T) {
	g := NewGraph()
	a := g.Link("a")
	b := g.Link("b")
	g.Add(NewSource("src", seqRecs(100), a))
	g.Add(NewMap("double", func(r *record.Rec) {
		r.Put(0, r.Get(0)*2)
	}, a, b))
	snk := NewSink("snk", b)
	g.Add(snk)
	cycles, err := g.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 100 {
		t.Fatalf("got %d records", snk.Count())
	}
	for i, r := range snk.Records() {
		if r.Get(0) != uint32(2*i) {
			t.Fatalf("record %d = %d", i, r.Get(0))
		}
	}
	// 100 records = 7 vectors; pipeline+links add tens of cycles, not thousands.
	if cycles > 200 {
		t.Errorf("linear pipeline took %d cycles for 7 vectors", cycles)
	}
}

func TestMapStatefulCounter(t *testing.T) {
	g := NewGraph()
	a, b := g.Link("a"), g.Link("b")
	g.Add(NewSource("src", seqRecs(50), a))
	ctr := uint32(0)
	g.Add(NewMap("stamp", func(r *record.Rec) {
		*r = r.Append(ctr)
		ctr++
	}, a, b))
	snk := NewSink("snk", b)
	g.Add(snk)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	for i, r := range snk.Records() {
		if r.Get(1) != uint32(i) {
			t.Fatalf("stamp %d = %d", i, r.Get(1))
		}
	}
}

func TestFilterSplitsAndCompacts(t *testing.T) {
	g := NewGraph()
	in, even, odd := g.Link("in"), g.Link("even"), g.Link("odd")
	g.Add(NewSource("src", seqRecs(99), in))
	g.Add(NewFilter("parity", func(r *record.Rec) int {
		return int(r.Get(0) % 2)
	}, in, []Output{{Link: even}, {Link: odd}}, nil))
	se, so := NewSink("se", even), NewSink("so", odd)
	g.Add(se, so)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if se.Count() != 50 || so.Count() != 49 {
		t.Fatalf("even=%d odd=%d", se.Count(), so.Count())
	}
	for _, r := range se.Records() {
		if r.Get(0)%2 != 0 {
			t.Fatal("odd record on even stream")
		}
	}
}

func TestFilterDrop(t *testing.T) {
	g := NewGraph()
	in, keep := g.Link("in"), g.Link("keep")
	g.Add(NewSource("src", seqRecs(64), in))
	g.Add(NewFilter("drop-high", func(r *record.Rec) int {
		if r.Get(0) < 16 {
			return 0
		}
		return -1 // kill
	}, in, []Output{{Link: keep}}, nil))
	snk := NewSink("snk", keep)
	g.Add(snk)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 16 {
		t.Fatalf("kept %d", snk.Count())
	}
}

func TestMergeCombines(t *testing.T) {
	g := NewGraph()
	a, b, out := g.Link("a"), g.Link("b"), g.Link("out")
	g.Add(NewSource("s1", seqRecs(40), a))
	recs2 := make([]record.Rec, 25)
	for i := range recs2 {
		recs2[i] = record.Make(uint32(1000 + i))
	}
	g.Add(NewSource("s2", recs2, b))
	g.Add(NewMerge("m", a, b, out))
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 65 {
		t.Fatalf("merged %d", snk.Count())
	}
}

func TestForkExpands(t *testing.T) {
	g := NewGraph()
	in, out := g.Link("in"), g.Link("out")
	g.Add(NewSource("src", seqRecs(20), in))
	g.Add(NewFork("fork3", func(r record.Rec) []record.Rec {
		return []record.Rec{r, r, r}
	}, in, out, nil))
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 60 {
		t.Fatalf("forked to %d", snk.Count())
	}
}

// TestCyclicCountdownLoop is the canonical recirculating while-loop of
// fig. 5a: threads decrement a counter until zero, then exit. It validates
// the LoopCtl drain protocol end to end, including threads with wildly
// different lifetimes bypassing one another.
func TestCyclicCountdownLoop(t *testing.T) {
	g := NewGraph()
	ext, body, dec, exit := g.Link("ext"), g.Link("body"), g.Link("dec"), g.Link("exit")
	recirc := g.Link("recirc")

	// Thread: [id, count]. Loop until count == 0.
	var recs []record.Rec
	for i := 0; i < 200; i++ {
		recs = append(recs, record.Make(uint32(i), uint32(i%17)))
	}
	ctl := NewLoopCtl()
	g.Add(NewSource("src", recs, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewMap("dec", func(r *record.Rec) {
		if c := r.Get(1); c > 0 {
			r.Put(1, c-1)
		}
	}, body, dec))
	g.Add(NewFilter("exit?", func(r *record.Rec) int {
		if r.Get(1) == 0 {
			return 0 // exit
		}
		return 1 // recirculate
	}, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	snk := NewSink("snk", exit)
	g.Add(snk)

	if _, err := g.Run(1_000_000); err != nil {
		t.Fatalf("loop run: %v", err)
	}
	if snk.Count() != 200 {
		t.Fatalf("exited %d threads, want 200", snk.Count())
	}
	ids := sortedField0(snk.Records())
	for i, id := range ids {
		if id != uint32(i) {
			t.Fatalf("thread %d missing (got id %d)", i, id)
		}
	}
	if ctl.Inflight() != 0 {
		t.Errorf("loop drained but inflight=%d", ctl.Inflight())
	}
}

// TestLoopWithForkInside: threads fork children inside a cyclic pipeline
// (the B-tree pattern). Each thread of depth d spawns two children of depth
// d-1; depth-0 threads exit. Total exits = 2^d per root.
func TestLoopWithForkInside(t *testing.T) {
	g := NewGraph()
	ext, body, forked, exit := g.Link("ext"), g.Link("body"), g.Link("forked"), g.Link("exit")
	recirc := g.Link("recirc")
	ctl := NewLoopCtl()

	roots := []record.Rec{record.Make(1, 3), record.Make(2, 4)} // depths 3, 4
	g.Add(NewSource("src", roots, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewFork("split", func(r record.Rec) []record.Rec {
		d := r.Get(1)
		if d == 0 {
			return []record.Rec{r}
		}
		c := r.Set(1, d-1)
		return []record.Rec{c, c}
	}, body, forked, ctl))
	g.Add(NewFilter("leaf?", func(r *record.Rec) int {
		if r.Get(1) == 0 {
			return 0
		}
		return 1
	}, forked, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	snk := NewSink("snk", exit)
	g.Add(snk)

	if _, err := g.Run(1_000_000); err != nil {
		t.Fatalf("fork loop: %v", err)
	}
	want := 8 + 16 // 2^3 + 2^4
	if snk.Count() != want {
		t.Fatalf("leaves=%d want %d", snk.Count(), want)
	}
}

// TestLoopWithSpadInside: the full fig. 5a shape — a scratchpad gather in
// the loop body (linked-list walk). Lists are chained in scratchpad memory;
// each thread walks to its list end and reports the final node value.
func TestLoopWithSpadInside(t *testing.T) {
	// Node layout: mem[2i] = value, mem[2i+1] = next index (0xFFFF = nil).
	const nil32 = 0xFFFF
	mem := spad.NewMem(16, 256, 1)
	// Build 8 lists, list k: nodes k, k+8, k+16, ... k+8*(k) → length k+1.
	for k := uint32(0); k < 8; k++ {
		for j := uint32(0); j <= k; j++ {
			idx := k + 8*j
			mem.Write(2*idx, 100*k+j) // value encodes position
			if j == k {
				mem.Write(2*idx+1, nil32)
			} else {
				mem.Write(2*idx+1, idx+8)
			}
		}
	}

	g := NewGraph()
	ext, body, fetched := g.Link("ext"), g.Link("body"), g.Link("fetched")
	recirc, exit := g.Link("recirc"), g.Link("exit")
	ctl := NewLoopCtl()

	// Thread: [listID, nodeIdx, value].
	var recs []record.Rec
	for k := uint32(0); k < 8; k++ {
		recs = append(recs, record.Make(k, k, 0))
	}
	g.Add(NewSource("src", recs, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	tile := spad.NewTile(spad.DefaultConfig("nodes"), mem, spad.Spec{
		Op:    spad.OpRead,
		Width: 2,
		Addr:  func(r *record.Rec) uint32 { return 2 * r.Get(1) },
		Apply: func(r *record.Rec, resp []uint32) bool {
			r.Put(2, resp[0]) // value
			r.Put(1, resp[1]) // next
			return true
		},
	}, body, fetched, g.Stats())
	g.Add(tile)
	g.Add(NewFilter("end?", func(r *record.Rec) int {
		if r.Get(1) == nil32 {
			return 0
		}
		return 1
	}, fetched, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	snk := NewSink("snk", exit)
	g.Add(snk)

	if _, err := g.Run(1_000_000); err != nil {
		t.Fatalf("spad loop: %v", err)
	}
	if snk.Count() != 8 {
		t.Fatalf("exits=%d", snk.Count())
	}
	for _, r := range snk.Records() {
		k := r.Get(0)
		if r.Get(2) != 100*k+k {
			t.Errorf("list %d final value %d, want %d", k, r.Get(2), 100*k+k)
		}
	}
}

func TestDRAMNodeGatherScatter(t *testing.T) {
	h := dram.New(dram.DefaultConfig())
	for i := uint32(0); i < 1000; i++ {
		h.WriteWord(i, i*5)
	}
	g := NewGraph()
	g.AttachHBM(h)
	in, mid, out := g.Link("in"), g.Link("mid"), g.Link("out")
	g.Add(NewSource("src", seqRecs(300), in))
	NewDRAMNode(g, "gather", spad.Spec{
		Op:    spad.OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
		Apply: func(r *record.Rec, resp []uint32) bool {
			*r = r.Append(resp[0])
			return true
		},
	}, in, mid)
	NewDRAMNode(g, "scatter", spad.Spec{
		Op:    spad.OpWrite,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return 2000 + r.Get(0) },
		Data:  func(r *record.Rec, _ int) uint32 { return r.Get(1) + 1 },
		// Each record writes its own key-indexed slot; no two threads collide.
		DisjointAddrs: true,
	}, mid, out)
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 300 {
		t.Fatalf("got %d", snk.Count())
	}
	for i := uint32(0); i < 300; i++ {
		if v := h.ReadWord(2000 + i); v != i*5+1 {
			t.Fatalf("dram[%d]=%d want %d", 2000+i, v, i*5+1)
		}
	}
}
