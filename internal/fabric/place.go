package fabric

import (
	"fmt"
	"sort"
)

// Placement (paper §V-B): the paper lowers a SQL operator tree to a tile
// graph and uses "a custom place and route tool" to map tiles onto the
// 20×20 fabric, accounting for interconnect latency and bandwidth. This is
// the corresponding lite placer: a breadth-first linearization of the
// kernel netlist laid out along a serpentine scan of the grid, which keeps
// connected tiles adjacent. Link latency is 1 + the Manhattan distance
// between endpoint tiles.
//
// Kernels in this repository use the default LinkLatency (2 cycles ≈ one
// placed hop); a test verifies the probe kernel's average placed distance
// matches that default. The threading model tolerates arbitrary on-chip
// latencies (paper §III-A), so placement perturbs throughput only at the
// margin — but the tool is here for anyone studying layout sensitivity.

// Netlist describes a kernel as named tiles and directed edges.
type Netlist struct {
	Nodes []string
	Edges [][2]string
}

// Coord is a tile position on the fabric grid.
type Coord struct {
	X, Y int
}

// Placement is a computed layout.
type Placement struct {
	Grid  Coord // grid dimensions
	Coord map[string]Coord
}

// GorgonGrid is the fabric size of the paper's target: a 20×20 grid of
// compute and scratchpad tiles.
var GorgonGrid = Coord{X: 20, Y: 20}

// Place lays out the netlist on a grid. It returns an error when the
// netlist does not fit or references undeclared nodes.
func Place(n Netlist, grid Coord) (*Placement, error) {
	if len(n.Nodes) > grid.X*grid.Y {
		return nil, fmt.Errorf("fabric: %d tiles exceed a %dx%d grid", len(n.Nodes), grid.X, grid.Y)
	}
	declared := make(map[string]bool, len(n.Nodes))
	for _, name := range n.Nodes {
		if name == "" {
			return nil, fmt.Errorf("fabric: empty node name")
		}
		if declared[name] {
			return nil, fmt.Errorf("fabric: duplicate node %q", name)
		}
		declared[name] = true
	}
	adj := make(map[string][]string)
	indeg := make(map[string]int)
	for _, e := range n.Edges {
		if !declared[e[0]] || !declared[e[1]] {
			return nil, fmt.Errorf("fabric: edge %v references undeclared node", e)
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}

	// BFS from the sources (in-degree zero), visiting fan-outs in
	// declaration order; cycles are entered at their first declared node.
	order := make([]string, 0, len(n.Nodes))
	seen := make(map[string]bool)
	var queue []string
	for _, name := range n.Nodes {
		if indeg[name] == 0 {
			queue = append(queue, name)
			seen[name] = true
		}
	}
	enqueue := func(name string) {
		if !seen[name] {
			seen[name] = true
			queue = append(queue, name)
		}
	}
	for {
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			for _, nxt := range adj[cur] {
				enqueue(nxt)
			}
		}
		if len(order) == len(n.Nodes) {
			break
		}
		// Pure cycles with no zero-indegree entry: seed the first
		// unplaced node in declaration order.
		for _, name := range n.Nodes {
			if !seen[name] {
				enqueue(name)
				break
			}
		}
	}

	// Serpentine scan: consecutive order positions are grid neighbours.
	p := &Placement{Grid: grid, Coord: make(map[string]Coord, len(order))}
	for i, name := range order {
		y := i / grid.X
		x := i % grid.X
		if y%2 == 1 {
			x = grid.X - 1 - x // snake back
		}
		p.Coord[name] = Coord{X: x, Y: y}
	}
	return p, nil
}

// Validate checks a placement against its netlist: every declared node is
// placed (and nothing else), every coordinate is inside the grid, and no
// two tiles share a coordinate. Hand-edited or merged placements go through
// here before anyone trusts their Latency numbers.
func (p *Placement) Validate(n Netlist) error {
	declared := make(map[string]bool, len(n.Nodes))
	for _, name := range n.Nodes {
		declared[name] = true
		if _, ok := p.Coord[name]; !ok {
			return fmt.Errorf("fabric: node %q is declared but not placed", name)
		}
	}
	placed := make([]string, 0, len(p.Coord))
	for name := range p.Coord {
		placed = append(placed, name)
	}
	sort.Strings(placed)
	occupied := make(map[Coord]string, len(placed))
	for _, name := range placed {
		if !declared[name] {
			return fmt.Errorf("fabric: placement includes undeclared node %q", name)
		}
		c := p.Coord[name]
		if c.X < 0 || c.X >= p.Grid.X || c.Y < 0 || c.Y >= p.Grid.Y {
			return fmt.Errorf("fabric: node %q placed at (%d,%d), outside the %dx%d grid",
				name, c.X, c.Y, p.Grid.X, p.Grid.Y)
		}
		if prev, ok := occupied[c]; ok {
			return fmt.Errorf("fabric: nodes %q and %q share tile (%d,%d)", prev, name, c.X, c.Y)
		}
		occupied[c] = name
	}
	return nil
}

// Latency returns the link latency between two placed tiles: one cycle of
// registering plus the Manhattan hop count.
func (p *Placement) Latency(a, b string) (int, error) {
	ca, ok := p.Coord[a]
	if !ok {
		return 0, fmt.Errorf("fabric: node %q not placed", a)
	}
	cb, ok := p.Coord[b]
	if !ok {
		return 0, fmt.Errorf("fabric: node %q not placed", b)
	}
	return 1 + abs(ca.X-cb.X) + abs(ca.Y-cb.Y), nil
}

// WireStats summarizes a placement against its netlist: total and mean
// Manhattan wirelength over all edges.
func (p *Placement) WireStats(n Netlist) (total int, mean float64, err error) {
	if len(n.Edges) == 0 {
		return 0, 0, nil
	}
	for _, e := range n.Edges {
		l, err := p.Latency(e[0], e[1])
		if err != nil {
			return 0, 0, err
		}
		total += l - 1
	}
	return total, float64(total) / float64(len(n.Edges)), nil
}

// Render draws the placement as a compact ASCII grid (tiles shown by their
// order index) — a debugging aid for layout studies.
func (p *Placement) Render() string {
	byCoord := make(map[Coord]int)
	names := make([]string, 0, len(p.Coord))
	for name := range p.Coord {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		byCoord[p.Coord[name]] = i + 1
	}
	out := ""
	maxY := 0
	for _, name := range names {
		if c := p.Coord[name]; c.Y > maxY {
			maxY = c.Y
		}
	}
	for y := 0; y <= maxY; y++ {
		for x := 0; x < p.Grid.X; x++ {
			if id, ok := byCoord[Coord{X: x, Y: y}]; ok {
				out += fmt.Sprintf("%3d", id)
			} else {
				out += "  ."
			}
		}
		out += "\n"
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// ProbeKernelNetlist returns the tile netlist of the fig. 6a hash-probe
// kernel — the layout-sensitivity reference used by tests and docs.
func ProbeKernelNetlist() Netlist {
	return Netlist{
		Nodes: []string{
			"src", "hash", "headRead", "emptyFilter", "entryMerge",
			"addrSplit", "spadGather", "dramGather", "fetchJoin",
			"compareFork", "routeFilter", "project", "sink",
		},
		Edges: [][2]string{
			{"src", "hash"}, {"hash", "headRead"}, {"headRead", "emptyFilter"},
			{"emptyFilter", "entryMerge"}, {"entryMerge", "addrSplit"},
			{"addrSplit", "spadGather"}, {"addrSplit", "dramGather"},
			{"spadGather", "fetchJoin"}, {"dramGather", "fetchJoin"},
			{"fetchJoin", "compareFork"}, {"compareFork", "routeFilter"},
			{"routeFilter", "entryMerge"}, // the recirculating path
			{"routeFilter", "project"}, {"project", "sink"},
		},
	}
}
