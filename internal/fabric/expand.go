package fabric

import (
	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// DRAMExpand fuses a wide DRAM block fetch with a fork tile: each thread
// fetches a node block (too wide to live in the thread record) and spawns
// zero or more child threads from it. This is the tree-walk primitive of
// figs. 6b and 9: B-tree descent, R-tree window queries, and spatial joins
// all fetch a block of children and insert the matching ones into the
// pipeline as new threads. The block size hides DRAM latency and keeps the
// pipeline full.
type DRAMExpand struct {
	name   string
	h      *dram.HBM
	width  int
	addrFn func(record.Rec) uint32
	expand func(record.Rec, []uint32) []record.Rec
	ctl    *LoopCtl
	in     *sim.Link
	out    *sim.Link
	stat   *sim.Stats

	maxOutstanding int
	backlog        ring.Queue[record.Rec]
	outstanding    int
	ready          ring.Queue[record.Rec]
	eosIn          bool
	eos            bool

	stallCnt, fetchCnt *sim.Counter
}

// NewDRAMExpand builds the node. width is the block size in words; expand
// receives the thread and the fetched block and returns the child threads
// (an empty slice kills the parent). ctl must be the enclosing loop's
// control when the node sits inside a cyclic pipeline.
func NewDRAMExpand(g *Graph, name string, width int, addrFn func(record.Rec) uint32,
	expand func(record.Rec, []uint32) []record.Rec, ctl *LoopCtl, in, out *sim.Link) *DRAMExpand {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	n := &DRAMExpand{
		name: name, h: g.HBM, width: width, addrFn: addrFn, expand: expand,
		ctl: ctl, in: in, out: out, stat: g.Stats(), maxOutstanding: 64,
	}
	n.stallCnt = n.stat.Counter(name + ".dram_stall")
	n.fetchCnt = n.stat.Counter(name + ".fetches")
	g.Add(n)
	return n
}

// Name implements sim.Component.
func (d *DRAMExpand) Name() string { return d.name }

// InputLinks implements sim.InputPorts.
func (d *DRAMExpand) InputLinks() []*sim.Link { return []*sim.Link{d.in} }

// OutputLinks implements sim.OutputPorts.
func (d *DRAMExpand) OutputLinks() []*sim.Link { return []*sim.Link{d.out} }

// Done implements sim.Component.
func (d *DRAMExpand) Done() bool { return d.eos }

// Idle implements sim.Idler: see DRAMNode.Idle.
func (d *DRAMExpand) Idle(int64) bool {
	if d.ready.Len() > 0 || d.backlog.Len() > 0 {
		return false
	}
	if !d.eosIn && !d.in.Empty() {
		return false
	}
	if d.eosIn && !d.eos && d.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: the HBM fires this node's
// completion callbacks, and expansions inside a loop mutate its control.
func (d *DRAMExpand) SharedState() []any {
	if d.ctl != nil {
		return []any{d.h, d.ctl}
	}
	return []any{d.h}
}

// WakeHint implements sim.WakeHinter: no self-timed events — progress
// comes from link flits and HBM completions (shared-state partner).
func (d *DRAMExpand) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (d *DRAMExpand) Tick(cycle int64) {
	// Emit matured children, one dense vector per cycle.
	if d.ready.Len() > 0 && d.out.CanPush() {
		n := d.ready.Len()
		if n > record.NumLanes {
			n = record.NumLanes
		}
		v := d.out.StageVec(cycle)
		for i := 0; i < n; i++ {
			*v.PushRef() = *d.ready.Front()
			d.ready.Drop()
		}
	}
	// Submit fetches.
	for d.backlog.Len() > 0 && d.outstanding < d.maxOutstanding && d.ready.Len() < 8*record.NumLanes {
		r := *d.backlog.Front()
		ok := d.h.SubmitAt(cycle, dram.Request{
			Addr: d.addrFn(r), Words: d.width,
			// One completion closure per fetch, amortized over the DRAM
			// round trip.
			Done: func(data []uint32) { // lint:hotalloc-ok per-request closure, amortized over the DRAM round trip
				d.outstanding--
				children := d.expand(r, data)
				if d.ctl != nil {
					d.ctl.Spawn(len(children) - 1)
				}
				for _, c := range children {
					*d.ready.PushRefDirty() = c
				}
			},
		})
		if !ok {
			d.stallCnt.Add(1)
			break
		}
		d.outstanding++
		d.backlog.Drop()
		d.fetchCnt.Add(1)
	}
	// Accept input.
	if !d.eosIn && !d.in.Empty() && d.backlog.Len() <= 2*record.NumLanes {
		f := d.in.Peek()
		d.in.Drop()
		if f.EOS {
			d.eosIn = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Mask&(1<<uint(i)) != 0 {
					*d.backlog.PushRefDirty() = f.Vec.Lane[i]
				}
			}
		}
	}
	// Forward EOS once drained.
	if d.eosIn && !d.eos && d.backlog.Len() == 0 && d.outstanding == 0 && d.ready.Len() == 0 && d.out.CanPush() {
		d.out.PushEOS(cycle)
		d.eos = true
	}
}
