package fabric

import (
	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// DRAMExpand fuses a wide DRAM block fetch with a fork tile: each thread
// fetches a node block (too wide to live in the thread record) and spawns
// zero or more child threads from it. This is the tree-walk primitive of
// figs. 6b and 9: B-tree descent, R-tree window queries, and spatial joins
// all fetch a block of children and insert the matching ones into the
// pipeline as new threads. The block size hides DRAM latency and keeps the
// pipeline full.
type DRAMExpand struct {
	name   string
	h      *dram.HBM
	width  int
	addrFn func(record.Rec) uint32
	expand func(record.Rec, []uint32) []record.Rec
	ctl    *LoopCtl
	in     *sim.Link
	out    *sim.Link
	stat   *sim.Stats

	maxOutstanding int
	backlog        []record.Rec
	outstanding    int
	ready          []record.Rec
	eosIn          bool
	eos            bool
}

// NewDRAMExpand builds the node. width is the block size in words; expand
// receives the thread and the fetched block and returns the child threads
// (an empty slice kills the parent). ctl must be the enclosing loop's
// control when the node sits inside a cyclic pipeline.
func NewDRAMExpand(g *Graph, name string, width int, addrFn func(record.Rec) uint32,
	expand func(record.Rec, []uint32) []record.Rec, ctl *LoopCtl, in, out *sim.Link) *DRAMExpand {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	n := &DRAMExpand{
		name: name, h: g.HBM, width: width, addrFn: addrFn, expand: expand,
		ctl: ctl, in: in, out: out, stat: g.Stats(), maxOutstanding: 64,
	}
	g.Add(n)
	return n
}

// Name implements sim.Component.
func (d *DRAMExpand) Name() string { return d.name }

// InputLinks implements sim.InputPorts.
func (d *DRAMExpand) InputLinks() []*sim.Link { return []*sim.Link{d.in} }

// OutputLinks implements sim.OutputPorts.
func (d *DRAMExpand) OutputLinks() []*sim.Link { return []*sim.Link{d.out} }

// Done implements sim.Component.
func (d *DRAMExpand) Done() bool { return d.eos }

// Idle implements sim.Idler: see DRAMNode.Idle.
func (d *DRAMExpand) Idle(int64) bool {
	if len(d.ready) > 0 || len(d.backlog) > 0 {
		return false
	}
	if !d.eosIn && !d.in.Empty() {
		return false
	}
	if d.eosIn && !d.eos && d.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: the HBM fires this node's
// completion callbacks, and expansions inside a loop mutate its control.
func (d *DRAMExpand) SharedState() []any {
	if d.ctl != nil {
		return []any{d.h, d.ctl}
	}
	return []any{d.h}
}

// Tick implements sim.Component.
func (d *DRAMExpand) Tick(cycle int64) {
	// Emit matured children, one dense vector per cycle.
	if len(d.ready) > 0 && d.out.CanPush() {
		var v record.Vector
		n := len(d.ready)
		if n > record.NumLanes {
			n = record.NumLanes
		}
		for i := 0; i < n; i++ {
			v.Push(d.ready[i])
		}
		d.ready = d.ready[n:]
		d.out.Push(cycle, sim.Flit{Vec: v})
	}
	// Submit fetches.
	for len(d.backlog) > 0 && d.outstanding < d.maxOutstanding && len(d.ready) < 8*record.NumLanes {
		r := d.backlog[0]
		ok := d.h.Submit(dram.Request{
			Addr: d.addrFn(r), Words: d.width,
			Done: func(data []uint32) {
				d.outstanding--
				children := d.expand(r, data)
				if d.ctl != nil {
					d.ctl.Spawn(len(children) - 1)
				}
				d.ready = append(d.ready, children...)
			},
		})
		if !ok {
			d.stat.Add(d.name+".dram_stall", 1)
			break
		}
		d.outstanding++
		d.backlog = d.backlog[1:]
		d.stat.Add(d.name+".fetches", 1)
	}
	// Accept input.
	if !d.eosIn && !d.in.Empty() && len(d.backlog) <= 2*record.NumLanes {
		f := d.in.Pop()
		if f.EOS {
			d.eosIn = true
		} else {
			d.backlog = append(d.backlog, f.Vec.Records()...)
		}
	}
	// Forward EOS once drained.
	if d.eosIn && !d.eos && len(d.backlog) == 0 && d.outstanding == 0 && len(d.ready) == 0 && d.out.CanPush() {
		d.out.Push(cycle, sim.Flit{EOS: true})
		d.eos = true
	}
}
