package fabric

import (
	"fmt"
	"sort"
	"strings"

	"aurochs/internal/analysis/flow"
	"aurochs/internal/sim"
)

// This file is the credit prover half of aurochs-vet's graph analysis:
// where check.go rejects malformed topologies, Prove establishes the
// quantitative flow-control facts a sound graph is entitled to — per-link
// line-rate capacity and per-cycle credit sufficiency — and reports the
// configurations it cannot prove as warnings. The distinction is
// deliberate: an under-provisioned link or loop still makes forward
// progress under the credit protocol (TestLoopBackpressureUnderTinyLinks
// drains a cap=1 ring to completion), it just cannot sustain one flit per
// cycle, so these are performance proofs, not safety gates. The one new
// genuinely-fatal topology — a loop-entry Merge whose recirculating input
// does not close its cycle — is a Check error (DiagLoopEntryMiswired),
// because the drain protocol then waits on an in-flight count that can
// never reach zero.

// The prover's diagnostic classes. DiagLoopEntryMiswired is a hard Check
// error; the other two are Prove warnings.
const (
	// DiagLoopEntryMiswired: a NewLoopMerge whose priority (recirculating)
	// input is not fed from its own cycle, or whose external input is —
	// the classic swapped-argument bug. The drain protocol counts entries
	// on the wrong stream, so Inflight never returns to zero and the
	// stream-end token never enters the loop: provable deadlock.
	DiagLoopEntryMiswired DiagCode = "loop-entry-miswired"
	// DiagLineRate: a link with capacity < latency+1 cannot sustain one
	// flit per cycle; steady-state throughput degrades to cap/(lat+1).
	DiagLineRate DiagCode = "line-rate"
	// DiagCreditStarved: a recirculating cycle whose total link capacity
	// cannot cover the cycle's in-flight occupancy at line rate
	// (sum(cap) < sum(lat)+1); threads single-file around the loop.
	DiagCreditStarved DiagCode = "credit-starved"
)

// Proof is one positive fact the prover established about the graph.
type Proof struct {
	// Subject names the link or cycle the fact is about.
	Subject string `json:"subject"`
	// Property is the established fact, with the arithmetic inline.
	Property string `json:"property"`
}

// ProofReport is the outcome of Prove on a structurally sound graph:
// everything it could establish, and everything it could not.
type ProofReport struct {
	// Proofs are the established facts, in deterministic order.
	Proofs []Proof `json:"proofs"`
	// Warnings are provable performance hazards (line-rate, credit
	// starvation) and — under ProveOptions.RequireSchemas — untyped link
	// endpoints. The graph still runs to completion; it runs slowly or
	// unchecked.
	Warnings []Diag `json:"warnings,omitempty"`
	// Waived lists the order-dependent effects accepted on the strength of
	// an explicit waiver (spad.Spec.OrderWaiver or a ReorderDecl.Waiver),
	// plus declared-lossy streams on cycles waived via Spec.LossyWaiver.
	// They are not failures — the waiver is the author's audited
	// justification — but they are surfaced in every report so the audit
	// trail stays visible.
	Waived []Diag `json:"waived,omitempty"`
	// Flow is the token-flow prover's full report (occupancy bounds and
	// witnesses included), present under ProveOptions.RequireDeadlockFree.
	Flow *flow.Report `json:"flow,omitempty"`
}

// Clean reports whether every obligation was proven. Waived effects do not
// make a report unclean; they are accepted by declaration.
func (r *ProofReport) Clean() bool { return len(r.Warnings) == 0 }

func (r *ProofReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proved %d facts, %d warnings, %d waived", len(r.Proofs), len(r.Warnings), len(r.Waived))
	for _, p := range r.Proofs {
		fmt.Fprintf(&b, "\n  proof %s: %s", p.Subject, p.Property)
	}
	for _, d := range r.Warnings {
		fmt.Fprintf(&b, "\n  warn %s", d.String())
	}
	for _, d := range r.Waived {
		fmt.Fprintf(&b, "\n  waived %s", d.String())
	}
	return b.String()
}

// ProveOptions configures Prove's strictness.
type ProveOptions struct {
	// RequireSchemas demands a schema declaration on both endpoints of
	// every link: endpoints left untyped are reported as DiagUntypedLink
	// warnings instead of being silently skipped. This is the -schemas
	// gate of aurochs-vet; shipped blueprints must pass it.
	RequireSchemas bool
	// RequireDeadlockFree runs the token-flow abstract interpreter
	// (internal/analysis/flow) over the link graph: every cycle must prove
	// deadlock freedom and drain completeness, and the graph gets a static
	// occupancy bound. Failed obligations surface as warnings carrying the
	// flow-* rule as their code; the full report — including replayable
	// wedge witnesses — lands in ProofReport.Flow. This is the -flow gate
	// of aurochs-vet; shipped blueprints must pass it.
	RequireDeadlockFree bool
}

// Prove statically verifies the graph's flow-control provisioning. It
// first runs Check — proofs about a malformed topology would be vacuous —
// and returns its *CheckError unchanged if the structure is unsound.
// Otherwise it returns a report establishing, per link, whether the
// credit loop sustains full line rate (capacity >= latency+1: the link
// holds latency flits in flight plus one buffered at the consumer), and
// per recirculating cycle, whether total buffering covers the cycle's
// line-rate occupancy (sum of capacities >= sum of latencies + 1).
func (g *Graph) Prove() (*ProofReport, error) {
	return g.ProveWith(ProveOptions{})
}

// ProveWith is Prove with explicit options; see ProveOptions.
func (g *Graph) ProveWith(opt ProveOptions) (*ProofReport, error) {
	if err := g.Check(); err != nil {
		return nil, err
	}
	report := &ProofReport{}

	for _, l := range g.Sys.Links() {
		cap, lat := l.Capacity(), l.Latency()
		if cap >= lat+1 {
			report.Proofs = append(report.Proofs, Proof{
				Subject: "link " + l.Name(),
				Property: fmt.Sprintf("sustains full line rate (capacity %d >= latency %d + 1)",
					cap, lat),
			})
		} else {
			report.Warnings = append(report.Warnings, Diag{DiagLineRate,
				fmt.Sprintf("link %q cannot sustain line rate: capacity %d < latency %d + 1; steady-state throughput is %d/%d flits per cycle",
					l.Name(), cap, lat, cap, lat+1)})
		}
	}

	comps, ends := g.topology()
	cycles := 0
	for _, scc := range nontrivialSCCs(g, comps, ends) {
		cycles++
		member := make(map[int]bool, len(scc))
		for _, i := range scc {
			member[i] = true
		}
		// A cycle's standing occupancy at line rate is one flit per
		// latency stage of every link both of whose endpoints lie inside
		// the component; credits beyond that are what lets a node pop and
		// push in the same cycle.
		var sumCap, sumLat int
		var linkNames []string
		for _, l := range g.Sys.Links() {
			e := ends[l]
			if e == nil || len(e.producers) != 1 || len(e.consumers) != 1 {
				continue
			}
			if member[e.producers[0]] && member[e.consumers[0]] {
				sumCap += l.Capacity()
				sumLat += l.Latency()
				linkNames = append(linkNames, l.Name())
			}
		}
		names := make([]string, len(scc))
		for i, k := range scc {
			names[i] = comps[k].Name()
		}
		sort.Strings(names)
		subject := "cycle [" + strings.Join(names, ", ") + "]"
		if sumCap >= sumLat+1 {
			report.Proofs = append(report.Proofs, Proof{
				Subject: subject,
				Property: fmt.Sprintf("credit-sufficient: buffering %d >= line-rate occupancy %d + 1 across links [%s]",
					sumCap, sumLat, strings.Join(linkNames, ", ")),
			})
		} else {
			report.Warnings = append(report.Warnings, Diag{DiagCreditStarved,
				fmt.Sprintf("%s is credit-starved: total capacity %d < line-rate occupancy %d + 1 across links [%s]; threads will single-file around the loop",
					subject, sumCap, sumLat, strings.Join(linkNames, ", "))})
		}
	}
	if cycles == 0 {
		report.Proofs = append(report.Proofs, Proof{
			Subject:  "graph",
			Property: "acyclic: every flit path is finite, so draining the sources drains the graph",
		})
	}

	g.proveSchemas(report, comps, ends, opt)
	g.proveReorder(report, comps)

	if opt.RequireDeadlockFree {
		fr := g.ProveFlow()
		report.Flow = fr
		for _, p := range fr.Proofs {
			report.Proofs = append(report.Proofs, Proof{Subject: p.Subject, Property: p.Property})
		}
		for _, f := range fr.Findings {
			report.Warnings = append(report.Warnings, Diag{DiagCode(f.Rule), f.Msg})
		}
		for _, f := range fr.Warnings {
			report.Warnings = append(report.Warnings, Diag{DiagCode(f.Rule), f.Msg})
		}
		for _, f := range fr.Waived {
			report.Waived = append(report.Waived, Diag{DiagCode(f.Rule), f.Msg})
		}
	}

	sort.Slice(report.Proofs, func(i, j int) bool {
		if report.Proofs[i].Subject != report.Proofs[j].Subject {
			return report.Proofs[i].Subject < report.Proofs[j].Subject
		}
		return report.Proofs[i].Property < report.Proofs[j].Property
	})
	sort.Slice(report.Warnings, func(i, j int) bool {
		if report.Warnings[i].Code != report.Warnings[j].Code {
			return report.Warnings[i].Code < report.Warnings[j].Code
		}
		return report.Warnings[i].Msg < report.Warnings[j].Msg
	})
	sort.Slice(report.Waived, func(i, j int) bool {
		if report.Waived[i].Code != report.Waived[j].Code {
			return report.Waived[i].Code < report.Waived[j].Code
		}
		return report.Waived[i].Msg < report.Waived[j].Msg
	})
	return report, nil
}

// topology rebuilds the deduplicated component list and link attribution
// exactly as Check does, for analyses that run after Check has passed.
func (g *Graph) topology() ([]sim.Component, map[*sim.Link]*linkEnds) {
	var comps []sim.Component
	seen := make(map[sim.Component]bool)
	for _, c := range g.Sys.Components() {
		if !seen[c] {
			seen[c] = true
			comps = append(comps, c)
		}
	}
	ends := make(map[*sim.Link]*linkEnds)
	at := func(l *sim.Link) *linkEnds {
		e := ends[l]
		if e == nil {
			e = &linkEnds{}
			ends[l] = e
		}
		return e
	}
	for i, c := range comps {
		if op, ok := c.(sim.OutputPorts); ok {
			claimed := make(map[*sim.Link]bool)
			for _, l := range op.OutputLinks() {
				if l != nil && !claimed[l] {
					claimed[l] = true
					at(l).producers = append(at(l).producers, i)
				}
			}
		}
		if ip, ok := c.(sim.InputPorts); ok {
			claimed := make(map[*sim.Link]bool)
			for _, l := range ip.InputLinks() {
				if l != nil && !claimed[l] {
					claimed[l] = true
					at(l).consumers = append(at(l).consumers, i)
				}
			}
		}
	}
	return comps, ends
}

// nontrivialSCCs returns the strongly connected components with at least
// one internal edge (real cycles), using the same deterministic edge
// ordering as checkCycles.
func nontrivialSCCs(g *Graph, comps []sim.Component, ends map[*sim.Link]*linkEnds) [][]int {
	n := len(comps)
	adj := make([][]int, n)
	selfLoop := make([]bool, n)
	for _, l := range g.Sys.Links() {
		e := ends[l]
		if e == nil {
			continue
		}
		for _, p := range e.producers {
			for _, c := range e.consumers {
				if p == c {
					selfLoop[p] = true
				}
				adj[p] = append(adj[p], c)
			}
		}
	}
	var out [][]int
	for _, scc := range tarjanSCC(adj) {
		if len(scc) > 1 || selfLoop[scc[0]] {
			out = append(out, scc)
		}
	}
	return out
}
