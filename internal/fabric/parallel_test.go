package fabric

import (
	"runtime"
	"testing"

	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/spad"
)

// graphCase builds one graph instance and returns its sinks; the
// equivalence harness builds it once per kernel configuration and demands
// bit-identical cycles, stats, and sink contents.
type graphCase struct {
	name  string
	build func() (*Graph, []*Sink)
}

func parallelCases() []graphCase {
	return []graphCase{
		{name: "linear-map-filter-merge", build: func() (*Graph, []*Sink) {
			g := NewGraph()
			in, even, odd, dbl, out := g.Link("in"), g.Link("even"), g.Link("odd"), g.Link("dbl"), g.Link("out")
			g.Add(NewSource("src", seqRecs(400), in))
			g.Add(NewFilter("parity", func(r *record.Rec) int {
				return int(r.Get(0) % 2)
			}, in, []Output{{Link: even}, {Link: odd}}, nil))
			g.Add(NewMap("double", func(r *record.Rec) {
				*r = r.Set(0, r.Get(0)*2)
			}, even, dbl))
			g.Add(NewMerge("join", dbl, odd, out))
			snk := NewSink("snk", out)
			g.Add(snk)
			return g, []*Sink{snk}
		}},
		{name: "countdown-loop", build: func() (*Graph, []*Sink) {
			g := NewGraph()
			ext, body, dec, exit := g.Link("ext"), g.Link("body"), g.Link("dec"), g.Link("exit")
			recirc := g.Link("recirc")
			var recs []record.Rec
			for i := 0; i < 300; i++ {
				recs = append(recs, record.Make(uint32(i), uint32(i%23)))
			}
			ctl := NewLoopCtl()
			g.Add(NewSource("src", recs, ext))
			g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
			g.Add(NewMap("dec", func(r *record.Rec) {
				if c := r.Get(1); c > 0 {
					r.Put(1, c-1)
				}
			}, body, dec))
			g.Add(NewFilter("exit?", func(r *record.Rec) int {
				if r.Get(1) == 0 {
					return 0
				}
				return 1
			}, dec, []Output{
				{Link: exit, Exit: true},
				{Link: recirc, NoEOS: true},
			}, ctl))
			snk := NewSink("snk", exit)
			g.Add(snk)
			return g, []*Sink{snk}
		}},
		{name: "spad-loop", build: func() (*Graph, []*Sink) {
			const nil32 = 0xFFFF
			mem := spad.NewMem(16, 256, 1)
			for k := uint32(0); k < 8; k++ {
				for j := uint32(0); j <= k; j++ {
					idx := k + 8*j
					mem.Write(2*idx, 100*k+j)
					if j == k {
						mem.Write(2*idx+1, nil32)
					} else {
						mem.Write(2*idx+1, idx+8)
					}
				}
			}
			g := NewGraph()
			ext, body, fetched := g.Link("ext"), g.Link("body"), g.Link("fetched")
			recirc, exit := g.Link("recirc"), g.Link("exit")
			ctl := NewLoopCtl()
			var recs []record.Rec
			for k := uint32(0); k < 8; k++ {
				recs = append(recs, record.Make(k, k, 0))
			}
			g.Add(NewSource("src", recs, ext))
			g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
			g.Add(spad.NewTile(spad.DefaultConfig("nodes"), mem, spad.Spec{
				Op:    spad.OpRead,
				Width: 2,
				Addr:  func(r *record.Rec) uint32 { return 2 * r.Get(1) },
				Apply: func(r *record.Rec, resp []uint32) bool {
					r.Put(2, resp[0])
					r.Put(1, resp[1])
					return true
				},
			}, body, fetched, g.Stats()))
			g.Add(NewFilter("end?", func(r *record.Rec) int {
				if r.Get(1) == nil32 {
					return 0
				}
				return 1
			}, fetched, []Output{
				{Link: exit, Exit: true},
				{Link: recirc, NoEOS: true},
			}, ctl))
			snk := NewSink("snk", exit)
			g.Add(snk)
			return g, []*Sink{snk}
		}},
		{name: "dram-gather-scatter", build: func() (*Graph, []*Sink) {
			h := dram.New(dram.DefaultConfig())
			for i := uint32(0); i < 1000; i++ {
				h.WriteWord(i, i*5)
			}
			g := NewGraph()
			g.AttachHBM(h)
			in, mid, out := g.Link("in"), g.Link("mid"), g.Link("out")
			g.Add(NewSource("src", seqRecs(300), in))
			NewDRAMNode(g, "gather", spad.Spec{
				Op:    spad.OpRead,
				Width: 1,
				Addr:  func(r *record.Rec) uint32 { return r.Get(0) },
				Apply: func(r *record.Rec, resp []uint32) bool {
					*r = r.Append(resp[0])
					return true
				},
			}, in, mid)
			NewDRAMNode(g, "scatter", spad.Spec{
				Op:    spad.OpWrite,
				Width: 1,
				Addr:  func(r *record.Rec) uint32 { return 2000 + r.Get(0) },
				Data:  func(r *record.Rec, _ int) uint32 { return r.Get(1) + 1 },
				// Each record writes its own key-indexed slot; no collisions.
				DisjointAddrs: true,
			}, mid, out)
			snk := NewSink("snk", out)
			g.Add(snk)
			return g, []*Sink{snk}
		}},
		{name: "scan-append", build: func() (*Graph, []*Sink) {
			h := dram.New(dram.DefaultConfig())
			// Materialize [k, v] records, then stream scan → append.
			words := make([]uint32, 0, 1200)
			for i := uint32(0); i < 600; i++ {
				words = append(words, i, i*3)
			}
			h.LoadWords(4096, words)
			g := NewGraph()
			g.AttachHBM(h)
			a := g.Link("a")
			NewDRAMScan(g, "scan", []Extent{{Addr: 4096, Words: len(words)}}, 2, a)
			NewDRAMAppend(g, "app", 1<<21, 2, a)
			return g, nil
		}},
	}
}

type graphResult struct {
	cycles int64
	stats  string
	sinks  [][]record.Rec
}

func runCase(t *testing.T, c graphCase, workers int) graphResult {
	t.Helper()
	g, sinks := c.build()
	g.Workers = workers
	cycles, err := g.Run(2_000_000)
	if err != nil {
		t.Fatalf("%s workers=%d: %v", c.name, workers, err)
	}
	res := graphResult{cycles: cycles, stats: g.Stats().String()}
	for _, s := range sinks {
		res.sinks = append(res.sinks, s.Records())
	}
	return res
}

// TestGraphParallelEquivalence: every graph shape produces bit-identical
// cycles, stats, and outputs under the serial kernel, 2 workers, and
// GOMAXPROCS workers.
func TestGraphParallelEquivalence(t *testing.T) {
	for _, c := range parallelCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := runCase(t, c, 0)
			for _, w := range []int{2, runtime.GOMAXPROCS(0)} {
				got := runCase(t, c, w)
				if got.cycles != ref.cycles {
					t.Errorf("workers=%d: cycles %d != serial %d", w, got.cycles, ref.cycles)
				}
				if got.stats != ref.stats {
					t.Errorf("workers=%d: stats differ\nserial:\n%s\nparallel:\n%s", w, ref.stats, got.stats)
				}
				if len(got.sinks) != len(ref.sinks) {
					t.Fatalf("workers=%d: sink count differs", w)
				}
				for i := range ref.sinks {
					if len(got.sinks[i]) != len(ref.sinks[i]) {
						t.Errorf("workers=%d sink %d: %d records != %d", w, i, len(got.sinks[i]), len(ref.sinks[i]))
						continue
					}
					for j := range ref.sinks[i] {
						if got.sinks[i][j] != ref.sinks[i][j] {
							t.Errorf("workers=%d sink %d record %d differs", w, i, j)
							break
						}
					}
				}
			}
		})
	}
}

// TestSlowDRAMNotMisreportedAsDeadlock: a legal DRAM configuration with a
// deep queue and a punishing row-miss penalty stays silent far longer than
// the old hard-coded 4096-cycle grace window. The derived window (which
// sums the HBM's declared worst-case internal latency) must ride it out.
func TestSlowDRAMNotMisreportedAsDeadlock(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.RowMissPenalty = 3000
	cfg.RowHitLatency = 500
	cfg.BurstCycles = 16
	h := dram.New(cfg)
	for i := uint32(0); i < 64; i++ {
		h.WriteWord(i, i)
	}
	g := NewGraph()
	g.AttachHBM(h)
	in, out := g.Link("in"), g.Link("out")
	g.Add(NewSource("src", seqRecs(64), in))
	NewDRAMNode(g, "gather", spad.Spec{
		Op:    spad.OpRead,
		Width: 1,
		Addr:  func(r *record.Rec) uint32 { return (r.Get(0) % 4) * (1 << 14) }, // hammer row misses
		Apply: func(r *record.Rec, resp []uint32) bool {
			*r = r.Append(resp[0])
			return true
		},
	}, in, out)
	snk := NewSink("snk", out)
	g.Add(snk)
	if _, err := g.Run(10_000_000); err != nil {
		t.Fatalf("slow DRAM misreported: %v", err)
	}
	if snk.Count() != 64 {
		t.Fatalf("got %d of 64", snk.Count())
	}
}
