package fabric

import (
	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// DRAMExpand2 is the two-block variant of DRAMExpand: each thread fetches
// two node blocks (one from each of two indices) and forks children from
// their combination — the synchronized descent of a spatial join between
// two R-trees (paper fig. 9b), where a thread holds a *pair* of nodes and
// spawns a child thread per overlapping child pair.
type DRAMExpand2 struct {
	name   string
	h      *dram.HBM
	widthA int
	widthB int
	addrA  func(record.Rec) uint32
	addrB  func(record.Rec) uint32
	expand func(record.Rec, []uint32, []uint32) []record.Rec
	ctl    *LoopCtl
	in     *sim.Link
	out    *sim.Link
	stat   *sim.Stats

	maxOutstanding int
	backlog        []record.Rec
	outstanding    int
	ready          []record.Rec
	eosIn          bool
	eos            bool
}

// NewDRAMExpand2 builds the node; see DRAMExpand for the single-fetch form.
func NewDRAMExpand2(g *Graph, name string, widthA, widthB int,
	addrA, addrB func(record.Rec) uint32,
	expand func(r record.Rec, blockA, blockB []uint32) []record.Rec,
	ctl *LoopCtl, in, out *sim.Link) *DRAMExpand2 {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	n := &DRAMExpand2{
		name: name, h: g.HBM, widthA: widthA, widthB: widthB,
		addrA: addrA, addrB: addrB, expand: expand,
		ctl: ctl, in: in, out: out, stat: g.Stats(), maxOutstanding: 32,
	}
	g.Add(n)
	return n
}

// Name implements sim.Component.
func (d *DRAMExpand2) Name() string { return d.name }

// InputLinks implements sim.InputPorts.
func (d *DRAMExpand2) InputLinks() []*sim.Link { return []*sim.Link{d.in} }

// OutputLinks implements sim.OutputPorts.
func (d *DRAMExpand2) OutputLinks() []*sim.Link { return []*sim.Link{d.out} }

// Done implements sim.Component.
func (d *DRAMExpand2) Done() bool { return d.eos }

// Idle implements sim.Idler: see DRAMNode.Idle.
func (d *DRAMExpand2) Idle(int64) bool {
	if len(d.ready) > 0 || len(d.backlog) > 0 {
		return false
	}
	if !d.eosIn && !d.in.Empty() {
		return false
	}
	if d.eosIn && !d.eos && d.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: see DRAMExpand.SharedState.
func (d *DRAMExpand2) SharedState() []any {
	if d.ctl != nil {
		return []any{d.h, d.ctl}
	}
	return []any{d.h}
}

// Tick implements sim.Component.
func (d *DRAMExpand2) Tick(cycle int64) {
	// Emit matured children.
	if len(d.ready) > 0 && d.out.CanPush() {
		var v record.Vector
		n := len(d.ready)
		if n > record.NumLanes {
			n = record.NumLanes
		}
		for i := 0; i < n; i++ {
			v.Push(d.ready[i])
		}
		d.ready = d.ready[n:]
		d.out.Push(cycle, sim.Flit{Vec: v})
	}
	// Submit paired fetches: both blocks must arrive before expansion.
	for len(d.backlog) > 0 && d.outstanding < d.maxOutstanding && len(d.ready) < 8*record.NumLanes {
		r := d.backlog[0]
		// Two requests joined by a shared arrival counter.
		arrived := 0
		var dataA, dataB []uint32
		done := func() {
			arrived++
			if arrived < 2 {
				return
			}
			d.outstanding--
			children := d.expand(r, dataA, dataB)
			if d.ctl != nil {
				d.ctl.Spawn(len(children) - 1)
			}
			d.ready = append(d.ready, children...)
		}
		okA := d.h.Submit(dram.Request{Addr: d.addrA(r), Words: d.widthA, Done: func(data []uint32) {
			dataA = data
			done()
		}})
		if !okA {
			d.stat.Add(d.name+".dram_stall", 1)
			break
		}
		okB := d.h.Submit(dram.Request{Addr: d.addrB(r), Words: d.widthB, Done: func(data []uint32) {
			dataB = data
			done()
		}})
		if !okB {
			// First leg is in flight; absorb the second functionally so
			// the pair completes (charge a stall).
			d.stat.Add(d.name+".dram_stall", 1)
			dataB = d.h.SnapshotWords(d.addrB(r), d.widthB)
			done()
		}
		d.outstanding++
		d.backlog = d.backlog[1:]
		d.stat.Add(d.name+".fetch_pairs", 1)
	}
	// Accept input.
	if !d.eosIn && !d.in.Empty() && len(d.backlog) <= 2*record.NumLanes {
		f := d.in.Pop()
		if f.EOS {
			d.eosIn = true
		} else {
			d.backlog = append(d.backlog, f.Vec.Records()...)
		}
	}
	if d.eosIn && !d.eos && len(d.backlog) == 0 && d.outstanding == 0 && len(d.ready) == 0 && d.out.CanPush() {
		d.out.Push(cycle, sim.Flit{EOS: true})
		d.eos = true
	}
}
