package fabric

import (
	"aurochs/internal/dram"
	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// DRAMExpand2 is the two-block variant of DRAMExpand: each thread fetches
// two node blocks (one from each of two indices) and forks children from
// their combination — the synchronized descent of a spatial join between
// two R-trees (paper fig. 9b), where a thread holds a *pair* of nodes and
// spawns a child thread per overlapping child pair.
type DRAMExpand2 struct {
	name   string
	h      *dram.HBM
	widthA int
	widthB int
	addrA  func(record.Rec) uint32
	addrB  func(record.Rec) uint32
	expand func(record.Rec, []uint32, []uint32) []record.Rec
	ctl    *LoopCtl
	in     *sim.Link
	out    *sim.Link
	stat   *sim.Stats

	maxOutstanding int
	backlog        ring.Queue[record.Rec]
	outstanding    int
	ready          ring.Queue[record.Rec]
	eosIn          bool
	eos            bool

	stallCnt, pairCnt *sim.Counter
}

// NewDRAMExpand2 builds the node; see DRAMExpand for the single-fetch form.
func NewDRAMExpand2(g *Graph, name string, widthA, widthB int,
	addrA, addrB func(record.Rec) uint32,
	expand func(r record.Rec, blockA, blockB []uint32) []record.Rec,
	ctl *LoopCtl, in, out *sim.Link) *DRAMExpand2 {
	if g.HBM == nil {
		g.defectf(DiagNoHBM, "node %q accesses DRAM but the graph has no HBM attached (call AttachHBM first)", name)
	}
	n := &DRAMExpand2{
		name: name, h: g.HBM, widthA: widthA, widthB: widthB,
		addrA: addrA, addrB: addrB, expand: expand,
		ctl: ctl, in: in, out: out, stat: g.Stats(), maxOutstanding: 32,
	}
	n.stallCnt = n.stat.Counter(name + ".dram_stall")
	n.pairCnt = n.stat.Counter(name + ".fetch_pairs")
	g.Add(n)
	return n
}

// Name implements sim.Component.
func (d *DRAMExpand2) Name() string { return d.name }

// InputLinks implements sim.InputPorts.
func (d *DRAMExpand2) InputLinks() []*sim.Link { return []*sim.Link{d.in} }

// OutputLinks implements sim.OutputPorts.
func (d *DRAMExpand2) OutputLinks() []*sim.Link { return []*sim.Link{d.out} }

// Done implements sim.Component.
func (d *DRAMExpand2) Done() bool { return d.eos }

// Idle implements sim.Idler: see DRAMNode.Idle.
func (d *DRAMExpand2) Idle(int64) bool {
	if d.ready.Len() > 0 || d.backlog.Len() > 0 {
		return false
	}
	if !d.eosIn && !d.in.Empty() {
		return false
	}
	if d.eosIn && !d.eos && d.outstanding == 0 {
		return false
	}
	return true
}

// SharedState implements sim.StateSharer: see DRAMExpand.SharedState.
func (d *DRAMExpand2) SharedState() []any {
	if d.ctl != nil {
		return []any{d.h, d.ctl}
	}
	return []any{d.h}
}

// WakeHint implements sim.WakeHinter: no self-timed events — progress
// comes from link flits and HBM completions (shared-state partner).
func (d *DRAMExpand2) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (d *DRAMExpand2) Tick(cycle int64) {
	// Emit matured children.
	if d.ready.Len() > 0 && d.out.CanPush() {
		n := d.ready.Len()
		if n > record.NumLanes {
			n = record.NumLanes
		}
		v := d.out.StageVec(cycle)
		for i := 0; i < n; i++ {
			*v.PushRef() = *d.ready.Front()
			d.ready.Drop()
		}
	}
	// Submit paired fetches: both blocks must arrive before expansion.
	for d.backlog.Len() > 0 && d.outstanding < d.maxOutstanding && d.ready.Len() < 8*record.NumLanes {
		r := *d.backlog.Front()
		// Two requests joined by a shared arrival counter. The three
		// closures per fetch pair are amortized over the DRAM round trip.
		arrived := 0
		var dataA, dataB []uint32
		done := func() { // lint:hotalloc-ok per-request closure, amortized over the DRAM round trip
			arrived++
			if arrived < 2 {
				return
			}
			d.outstanding--
			children := d.expand(r, dataA, dataB)
			if d.ctl != nil {
				d.ctl.Spawn(len(children) - 1)
			}
			for _, c := range children {
				*d.ready.PushRefDirty() = c
			}
		}
		okA := d.h.SubmitAt(cycle, dram.Request{Addr: d.addrA(r), Words: d.widthA, Done: func(data []uint32) { // lint:hotalloc-ok per-request closure, amortized over the DRAM round trip
			dataA = data
			done()
		}})
		if !okA {
			d.stallCnt.Add(1)
			break
		}
		okB := d.h.SubmitAt(cycle, dram.Request{Addr: d.addrB(r), Words: d.widthB, Done: func(data []uint32) { // lint:hotalloc-ok per-request closure, amortized over the DRAM round trip
			dataB = data
			done()
		}})
		if !okB {
			// First leg is in flight; absorb the second functionally so
			// the pair completes (charge a stall).
			d.stallCnt.Add(1)
			dataB = d.h.SnapshotWords(d.addrB(r), d.widthB)
			done()
		}
		d.outstanding++
		d.backlog.Drop()
		d.pairCnt.Add(1)
	}
	// Accept input.
	if !d.eosIn && !d.in.Empty() && d.backlog.Len() <= 2*record.NumLanes {
		f := d.in.Peek()
		d.in.Drop()
		if f.EOS {
			d.eosIn = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Mask&(1<<uint(i)) != 0 {
					*d.backlog.PushRefDirty() = f.Vec.Lane[i]
				}
			}
		}
	}
	if d.eosIn && !d.eos && d.backlog.Len() == 0 && d.outstanding == 0 && d.ready.Len() == 0 && d.out.CanPush() {
		d.out.PushEOS(cycle)
		d.eos = true
	}
}
