package fabric

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// TestPropertyCountdownLoops: for any distribution of thread lifetimes, a
// recirculating loop must emit exactly one exit per thread with the drain
// protocol terminating cleanly — the invariant every kernel builds on.
func TestPropertyCountdownLoops(t *testing.T) {
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 1
		recs := make([]record.Rec, n)
		for i := range recs {
			recs[i] = record.Make(uint32(i), uint32(rng.Intn(40)))
		}
		g := NewGraph()
		ext, body, dec, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("dec"), g.Link("exit"), g.Link("recirc")
		ctl := NewLoopCtl()
		g.Add(NewSource("src", recs, ext))
		g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
		g.Add(NewMap("dec", func(r *record.Rec) {
			if c := r.Get(1); c > 0 {
				r.Put(1, c-1)
			}
		}, body, dec))
		g.Add(NewFilter("exit?", func(r *record.Rec) int {
			if r.Get(1) == 0 {
				return 0
			}
			return 1
		}, dec, []Output{
			{Link: exit, Exit: true},
			{Link: recirc, NoEOS: true},
		}, ctl))
		snk := NewSink("snk", exit)
		g.Add(snk)
		if _, err := g.Run(5_000_000); err != nil {
			return false
		}
		if snk.Count() != n || ctl.Inflight() != 0 {
			return false
		}
		seen := map[uint32]bool{}
		for _, r := range snk.Records() {
			if seen[r.Get(0)] {
				return false // a thread exited twice
			}
			seen[r.Get(0)] = true
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

// TestMiswiredLoopIsCaughtAsDeadlock: failure injection — a loop whose exit
// filter forgets the LoopCtl is structurally sound (Check passes: the cycle
// is wired and has its entry merge) but never proves its drain, and the
// runner must report a deadlock instead of hanging or silently completing.
func TestMiswiredLoopIsCaughtAsDeadlock(t *testing.T) {
	g := NewGraph()
	ext, body, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", []record.Rec{record.Make(0, 0)}, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	// BUG under test: ctl is nil here, so exits are never counted.
	g.Add(NewFilter("exit?", func(r *record.Rec) int { return 0 }, body, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, nil))
	snk := NewSink("snk", exit)
	g.Add(snk)
	_, err := g.Run(1_000_000)
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("mis-wired loop should deadlock-detect, got %v", err)
	}
}

// TestHalfWiredLoopIsCaughtStatically: the grosser form of the same mistake
// — the recirculating link is never produced at all — must not survive to
// simulation: Check rejects it before the first cycle.
func TestHalfWiredLoopIsCaughtStatically(t *testing.T) {
	g := NewGraph()
	ext, body, exit, recirc := g.Link("ext"), g.Link("body"), g.Link("exit"), g.Link("recirc")
	ctl := NewLoopCtl()
	g.Add(NewSource("src", []record.Rec{record.Make(0, 0)}, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewFilter("exit?", func(r *record.Rec) int { return 0 }, body, []Output{
		{Link: exit, Exit: true},
	}, nil))
	snk := NewSink("snk", exit)
	g.Add(snk)
	_, err := g.Run(1_000_000)
	var ce *CheckError
	if !errors.As(err, &ce) || !ce.Has(DiagNoProducer) {
		t.Fatalf("half-wired loop should fail Check with no-producer, got %v", err)
	}
}

// TestDoubleExitPanics: failure injection — counting an exit twice is a
// kernel bug the control must refuse to absorb.
func TestDoubleExitPanics(t *testing.T) {
	ctl := NewLoopCtl()
	ctl.Enter()
	ctl.Exit()
	defer func() {
		if recover() == nil {
			t.Error("inflight underflow must panic")
		}
	}()
	ctl.Exit()
}

// TestLoopBackpressureUnderTinyLinks: the drain protocol must hold even
// when every link is at minimum capacity (maximum backpressure).
func TestLoopBackpressureUnderTinyLinks(t *testing.T) {
	g := NewGraph()
	mk := func(name string) *sim.Link { return g.Sys.NewLink(name, 1, 1) }
	ext, body, dec, exit, recirc := mk("ext"), mk("body"), mk("dec"), mk("exit"), mk("recirc")
	ctl := NewLoopCtl()
	recs := make([]record.Rec, 64)
	for i := range recs {
		recs[i] = record.Make(uint32(i), uint32(i%7))
	}
	g.Add(NewSource("src", recs, ext))
	g.Add(NewLoopMerge("entry", recirc, ext, body, ctl))
	g.Add(NewMap("dec", func(r *record.Rec) {
		if c := r.Get(1); c > 0 {
			r.Put(1, c-1)
		}
	}, body, dec))
	g.Add(NewFilter("exit?", func(r *record.Rec) int {
		if r.Get(1) == 0 {
			return 0
		}
		return 1
	}, dec, []Output{
		{Link: exit, Exit: true},
		{Link: recirc, NoEOS: true},
	}, ctl))
	snk := NewSink("snk", exit)
	g.Add(snk)
	if _, err := g.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if snk.Count() != 64 {
		t.Fatalf("exits=%d", snk.Count())
	}
}
