package fabric

import (
	"fmt"
	"strings"
	"testing"
)

func chainNetlist(n int) Netlist {
	nl := Netlist{}
	for i := 0; i < n; i++ {
		nl.Nodes = append(nl.Nodes, fmt.Sprintf("t%d", i))
	}
	for i := 0; i+1 < n; i++ {
		nl.Edges = append(nl.Edges, [2]string{nl.Nodes[i], nl.Nodes[i+1]})
	}
	return nl
}

func TestPlaceChainAdjacent(t *testing.T) {
	nl := chainNetlist(50)
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	// A linear pipeline snakes through the grid: every hop is latency 2
	// (one register + one grid hop).
	for _, e := range nl.Edges {
		l, err := p.Latency(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if l != 2 {
			t.Fatalf("edge %v latency %d, want 2 (adjacent)", e, l)
		}
	}
}

func TestPlaceRejectsOverflowAndBadEdges(t *testing.T) {
	if _, err := Place(chainNetlist(401), GorgonGrid); err == nil {
		t.Error("401 tiles on a 20x20 grid accepted")
	}
	if _, err := Place(Netlist{Nodes: []string{"a"}, Edges: [][2]string{{"a", "b"}}}, GorgonGrid); err == nil {
		t.Error("undeclared edge endpoint accepted")
	}
	if _, err := Place(Netlist{Nodes: []string{"a", "a"}}, GorgonGrid); err == nil {
		t.Error("duplicate node accepted")
	}
}

// TestProbeKernelPlacementMatchesDefault: the default LinkLatency used by
// every kernel must match the placed reality of the probe kernel within a
// hop — the justification for not threading a placement through each graph.
func TestProbeKernelPlacementMatchesDefault(t *testing.T) {
	nl := ProbeKernelNetlist()
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	_, mean, err := p.WireStats(nl)
	if err != nil {
		t.Fatal(err)
	}
	meanLatency := 1 + mean
	if meanLatency < float64(LinkLatency)-1 || meanLatency > float64(LinkLatency)+2 {
		t.Errorf("probe kernel mean placed latency %.1f; kernels assume %d", meanLatency, LinkLatency)
	}
}

func TestPlaceCycleOnlyGraph(t *testing.T) {
	nl := Netlist{
		Nodes: []string{"a", "b", "c"},
		Edges: [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}},
	}
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Coord) != 3 {
		t.Fatalf("placed %d of 3", len(p.Coord))
	}
}

func TestRender(t *testing.T) {
	p, err := Place(chainNetlist(25), Coord{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if strings.Count(out, "\n") != 5 {
		t.Errorf("render rows:\n%s", out)
	}
}
