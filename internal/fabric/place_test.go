package fabric

import (
	"fmt"
	"strings"
	"testing"
)

func chainNetlist(n int) Netlist {
	nl := Netlist{}
	for i := 0; i < n; i++ {
		nl.Nodes = append(nl.Nodes, fmt.Sprintf("t%d", i))
	}
	for i := 0; i+1 < n; i++ {
		nl.Edges = append(nl.Edges, [2]string{nl.Nodes[i], nl.Nodes[i+1]})
	}
	return nl
}

func TestPlaceChainAdjacent(t *testing.T) {
	nl := chainNetlist(50)
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	// A linear pipeline snakes through the grid: every hop is latency 2
	// (one register + one grid hop).
	for _, e := range nl.Edges {
		l, err := p.Latency(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if l != 2 {
			t.Fatalf("edge %v latency %d, want 2 (adjacent)", e, l)
		}
	}
}

func TestPlaceRejectsOverflowAndBadEdges(t *testing.T) {
	if _, err := Place(chainNetlist(401), GorgonGrid); err == nil {
		t.Error("401 tiles on a 20x20 grid accepted")
	}
	if _, err := Place(Netlist{Nodes: []string{"a"}, Edges: [][2]string{{"a", "b"}}}, GorgonGrid); err == nil {
		t.Error("undeclared edge endpoint accepted")
	}
	if _, err := Place(Netlist{Nodes: []string{"a", "a"}}, GorgonGrid); err == nil {
		t.Error("duplicate node accepted")
	}
	if _, err := Place(Netlist{Nodes: []string{""}}, GorgonGrid); err == nil {
		t.Error("empty node name accepted")
	}
	if _, err := Place(Netlist{Nodes: []string{"a", "b"}, Edges: [][2]string{{"c", "b"}}}, GorgonGrid); err == nil {
		t.Error("undeclared edge source accepted")
	}
}

// TestPlaceMixedCycleAndDAG: a netlist whose cycle hangs off a DAG prefix —
// the shape of every looped kernel — places all nodes exactly once.
func TestPlaceMixedCycleAndDAG(t *testing.T) {
	nl := Netlist{
		Nodes: []string{"src", "entry", "body", "exit"},
		Edges: [][2]string{
			{"src", "entry"}, {"entry", "body"},
			{"body", "entry"}, // recirculation
			{"body", "exit"},
		},
	}
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Coord) != len(nl.Nodes) {
		t.Fatalf("placed %d of %d", len(p.Coord), len(nl.Nodes))
	}
	if err := p.Validate(nl); err != nil {
		t.Fatalf("computed placement fails its own validation: %v", err)
	}
}

// TestValidateRejectsCorruptPlacements: each way a hand-edited placement can
// go wrong is a distinct error.
func TestValidateRejectsCorruptPlacements(t *testing.T) {
	nl := Netlist{Nodes: []string{"a", "b"}, Edges: [][2]string{{"a", "b"}}}
	fresh := func() *Placement {
		p, err := Place(nl, Coord{X: 4, Y: 4})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	if err := fresh().Validate(nl); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}

	p := fresh()
	delete(p.Coord, "b")
	if err := p.Validate(nl); err == nil || !strings.Contains(err.Error(), "not placed") {
		t.Errorf("missing node: got %v", err)
	}

	p = fresh()
	p.Coord["ghost"] = Coord{X: 3, Y: 3}
	if err := p.Validate(nl); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("undeclared node: got %v", err)
	}

	p = fresh()
	p.Coord["b"] = p.Coord["a"]
	if err := p.Validate(nl); err == nil || !strings.Contains(err.Error(), "share tile") {
		t.Errorf("duplicate coordinate: got %v", err)
	}

	p = fresh()
	p.Coord["b"] = Coord{X: 4, Y: 0}
	if err := p.Validate(nl); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("out-of-grid: got %v", err)
	}
	p = fresh()
	p.Coord["b"] = Coord{X: 0, Y: -1}
	if err := p.Validate(nl); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("negative coordinate: got %v", err)
	}
}

// TestProbeKernelPlacementMatchesDefault: the default LinkLatency used by
// every kernel must match the placed reality of the probe kernel within a
// hop — the justification for not threading a placement through each graph.
func TestProbeKernelPlacementMatchesDefault(t *testing.T) {
	nl := ProbeKernelNetlist()
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	_, mean, err := p.WireStats(nl)
	if err != nil {
		t.Fatal(err)
	}
	meanLatency := 1 + mean
	if meanLatency < float64(LinkLatency)-1 || meanLatency > float64(LinkLatency)+2 {
		t.Errorf("probe kernel mean placed latency %.1f; kernels assume %d", meanLatency, LinkLatency)
	}
}

func TestPlaceCycleOnlyGraph(t *testing.T) {
	nl := Netlist{
		Nodes: []string{"a", "b", "c"},
		Edges: [][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}},
	}
	p, err := Place(nl, GorgonGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Coord) != 3 {
		t.Fatalf("placed %d of 3", len(p.Coord))
	}
}

func TestRender(t *testing.T) {
	p, err := Place(chainNetlist(25), Coord{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if strings.Count(out, "\n") != 5 {
		t.Errorf("render rows:\n%s", out)
	}
}
