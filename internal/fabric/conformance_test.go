package fabric

import (
	"errors"
	"strings"
	"testing"

	"aurochs/internal/record"
	"aurochs/internal/sim"
)

// conformanceCase pairs a graph builder with its name for the idle/wake
// contract sweeps below.
type conformanceCase struct {
	name  string
	build func(t *testing.T) *Graph
}

// conformanceCases: every fabric component type, driven solo or in the
// smallest graph that exercises it.
func conformanceCases() []conformanceCase {
	key := func(r record.Rec) uint64 { return uint64(r.Get(0)) }
	recs := func(n int) []record.Rec {
		out := make([]record.Rec, n)
		for i := range out {
			out[i] = record.Make(uint32(i), uint32(i%5))
		}
		return out
	}
	return []conformanceCase{
		{"source-map-sink", func(t *testing.T) *Graph {
			g := NewGraph()
			in, out := g.Link("in"), g.Link("out")
			g.Add(NewSource("src", recs(100), in))
			g.Add(NewMap("id", func(r *record.Rec) { *r = r.Set(1, r.Get(1)+1) }, in, out))
			g.Add(NewSink("snk", out))
			return g
		}},
		{"merge", func(t *testing.T) *Graph {
			g := NewGraph()
			a, b, out := g.Link("a"), g.Link("b"), g.Link("out")
			g.Add(NewSource("srcA", recs(64), a))
			g.Add(NewSource("srcB", recs(64), b))
			g.Add(NewMerge("m", a, b, out))
			g.Add(NewSink("snk", out))
			return g
		}},
		{"fork-filter", func(t *testing.T) *Graph {
			g := NewGraph()
			in, mid, out := g.Link("in"), g.Link("mid"), g.Link("out")
			g.Add(NewSource("src", recs(80), in))
			g.Add(NewFork("fork", func(r record.Rec) []record.Rec {
				return []record.Rec{r, r.Set(1, r.Get(1)+100)}
			}, in, mid, nil))
			g.Add(NewFilter("odd?", func(r *record.Rec) int {
				if r.Get(0)%2 == 1 {
					return 0
				}
				return -1
			}, mid, []Output{{Link: out}}, nil))
			g.Add(NewSink("snk", out))
			return g
		}},
		{"countdown-loop", func(t *testing.T) *Graph {
			g := NewGraph()
			countdownLoop(g, g.Link, false)
			return g
		}},
		{"ordered-merge", func(t *testing.T) *Graph {
			g := NewGraph()
			a, b, out := g.Link("a"), g.Link("b"), g.Link("out")
			g.Add(NewSource("srcA", recs(64), a))
			g.Add(NewSource("srcB", recs(64), b))
			g.Add(NewOrderedMerge("om", key, []*sim.Link{a, b}, out))
			g.Add(NewSink("snk", out))
			return g
		}},
		{"merge-join", func(t *testing.T) *Graph {
			g := NewGraph()
			a, b, out := g.Link("a"), g.Link("b"), g.Link("out")
			g.Add(NewSource("srcA", recs(64), a))
			g.Add(NewSource("srcB", recs(64), b))
			g.Add(NewMergeJoin("mj", key, key, func(x, y record.Rec) record.Rec {
				return x.Set(1, y.Get(1))
			}, a, b, out))
			g.Add(NewSink("snk", out))
			return g
		}},
		{"dram-scan-append", func(t *testing.T) *Graph {
			g := newHBMGraph()
			words := make([]uint32, 512)
			for i := range words {
				words[i] = uint32(i)
			}
			g.HBM.LoadWords(1000, words)
			out := g.Link("out")
			NewDRAMScan(g, "scan", []Extent{{Addr: 1000, Words: len(words)}}, 2, out)
			NewDRAMAppend(g, "app", 50000, 2, out)
			return g
		}},
		{"spill-queue", func(t *testing.T) *Graph {
			g := newHBMGraph()
			in, out := g.Link("in"), g.Link("out")
			g.Add(NewSource("src", recs(300), in))
			NewSpillQueue(g, "spill", 60000, 2, 32, in, out)
			// Spill queues sit on cyclic paths and never forward EOS, so
			// the consumer finishes by count.
			g.Add(&slowSink{in: out, want: 300})
			return g
		}},
	}
}

// TestIdleConformance: each case honours the Idler contract under
// sim.VerifyIdleContract — a Tick behind every Idle=true answer is proven
// to move no data, and the graph still drains. This is the runtime
// counterpart of the tickpurity analyzer: the analyzer proves Idle cannot
// write state, this harness proves the answers are correct.
func TestIdleConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			if err := g.Check(); err != nil {
				t.Fatal(err)
			}
			if err := sim.VerifyIdleContract(g.Sys, 1_000_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWakeConformance: the event-scheduler counterpart — on every cycle of
// a run on the wake kernel, each *sleeping* component's Idle answer is
// audited. A component with work no wake event announces (missing WakeHint
// timer, undeclared shared state) is reported by name instead of
// manifesting as a mystery deadlock at scale.
func TestWakeConformance(t *testing.T) {
	for _, tc := range conformanceCases() {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build(t)
			if err := g.Check(); err != nil {
				t.Fatal(err)
			}
			if err := sim.VerifyWakeContract(g.Sys, 1_000_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// eagerIdler claims quiescence while it still holds records to emit — the
// exact bug class the conformance harness exists to catch: under the real
// runner the skip would be permanent and the run would deadlock.
type eagerIdler struct {
	name string
	out  *sim.Link
	recs []record.Rec
	eos  bool
}

func (e *eagerIdler) Name() string             { return e.name }
func (e *eagerIdler) Done() bool               { return e.eos }
func (e *eagerIdler) OutputLinks() []*sim.Link { return []*sim.Link{e.out} }
func (e *eagerIdler) Idle(int64) bool          { return true }
func (e *eagerIdler) Tick(cycle int64) {
	if e.eos || !e.out.CanPush() {
		return
	}
	if len(e.recs) > 0 {
		var v record.Vector
		v.Push(e.recs[0])
		e.recs = e.recs[1:]
		e.out.Push(cycle, sim.Flit{Vec: v})
		return
	}
	e.out.Push(cycle, sim.Flit{EOS: true})
	e.eos = true
}

// TestIdleConformanceCatchesEagerIdler: the seeded violation — Idle=true
// with queued work — is reported as an *sim.IdleViolation naming the
// component, not as a mystery deadlock.
func TestIdleConformanceCatchesEagerIdler(t *testing.T) {
	g := NewGraph()
	out := g.Link("out")
	g.Add(&eagerIdler{name: "eager", out: out, recs: []record.Rec{record.Make(1, 2)}})
	g.Add(NewSink("snk", out))
	err := sim.VerifyIdleContract(g.Sys, 10_000)
	var iv *sim.IdleViolation
	if !errors.As(err, &iv) {
		t.Fatalf("want IdleViolation, got %v", err)
	}
	if iv.Component != "eager" || !strings.Contains(iv.What, "moved data") {
		t.Fatalf("violation misattributed: %v", iv)
	}
}
