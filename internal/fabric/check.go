package fabric

import (
	"fmt"
	"sort"
	"strings"

	"aurochs/internal/sim"
)

// This file is the static half of aurochs-vet: Graph.Check verifies a wired
// dataflow graph before the first cycle ticks. The properties it enforces
// are exactly the ones that otherwise surface as a deadlock thousands of
// cycles in (a link nobody drains, a cycle with no drain protocol) or as a
// silent panic (a push to a zero-capacity link): every link must have
// exactly one producer and one consumer among the registered components,
// every cycle must carry a loop-entry Merge implementing the §III-A drain
// protocol, and every DRAM-backed node must sit on a graph with HBM
// attached.
//
// Topology is reconstructed through the optional sim.InputPorts /
// sim.OutputPorts interfaces; components implementing neither (the HBM
// clock adapter) are treated as link-free.

// DiagCode classifies one class of structural defect.
type DiagCode string

// The defect classes Check distinguishes. Each malformed-graph test in
// check_test.go asserts one of these.
const (
	// DiagNilLink: a component's port list contains a nil link.
	DiagNilLink DiagCode = "nil-link"
	// DiagOrphanLink: a link no registered component produces or consumes.
	DiagOrphanLink DiagCode = "orphan-link"
	// DiagNoProducer: a link is consumed but nothing pushes it.
	DiagNoProducer DiagCode = "no-producer"
	// DiagNoConsumer: a link is produced but nothing pops it.
	DiagNoConsumer DiagCode = "no-consumer"
	// DiagMultiProducer: several components push one link (fan-in without a
	// Merge).
	DiagMultiProducer DiagCode = "multi-producer"
	// DiagMultiConsumer: several components pop one link.
	DiagMultiConsumer DiagCode = "multi-consumer"
	// DiagZeroCapacity: a link with capacity < 1 can never accept a flit.
	DiagZeroCapacity DiagCode = "zero-capacity"
	// DiagBadLatency: links are registered; latency must be >= 1.
	DiagBadLatency DiagCode = "bad-latency"
	// DiagDupNode: the same component was added twice.
	DiagDupNode DiagCode = "dup-node"
	// DiagDupName: two components share a name (stats would alias).
	DiagDupName DiagCode = "dup-name"
	// DiagNoHBM: a DRAM-backed node on a graph without AttachHBM.
	DiagNoHBM DiagCode = "no-hbm"
	// DiagNoLoopCtl: a cycle with no loop-entry Merge (NewLoopMerge) to run
	// the drain protocol.
	DiagNoLoopCtl DiagCode = "cycle-no-loopctl"
)

// Diag is one verification finding.
type Diag struct {
	Code DiagCode
	Msg  string
}

func (d Diag) String() string { return string(d.Code) + ": " + d.Msg }

// CheckError aggregates every finding from one Check pass, sorted by code
// then message so output is deterministic.
type CheckError struct {
	Diags []Diag
}

func (e *CheckError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fabric: graph check failed (%d problems)", len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	return b.String()
}

// Has reports whether any finding carries the given code — test helper and
// programmatic triage.
func (e *CheckError) Has(code DiagCode) bool {
	for _, d := range e.Diags {
		if d.Code == code {
			return true
		}
	}
	return false
}

// linkEnds records which components (by index) claim a link.
type linkEnds struct {
	producers []int
	consumers []int
}

// Check statically verifies the wired graph and returns a *CheckError
// listing every defect found, or nil when the topology is sound. Run calls
// it automatically; call it directly to validate a graph without
// simulating.
func (g *Graph) Check() error {
	diags := append([]Diag(nil), g.defects...)

	// Deduplicate registrations. Attribution below uses the unique set so a
	// double-added node is reported once, not as a phantom fan-in.
	var comps []sim.Component
	seen := make(map[sim.Component]bool)
	for _, c := range g.Sys.Components() {
		if seen[c] {
			diags = append(diags, Diag{DiagDupNode,
				fmt.Sprintf("node %q added more than once", c.Name())})
			continue
		}
		seen[c] = true
		comps = append(comps, c)
	}

	nameCount := make(map[string]int)
	for _, c := range comps {
		nameCount[c.Name()]++
	}
	var dupNames []string
	for name, n := range nameCount {
		if n > 1 {
			dupNames = append(dupNames, name)
		}
	}
	sort.Strings(dupNames)
	for _, name := range dupNames {
		diags = append(diags, Diag{DiagDupName,
			fmt.Sprintf("%d components share the name %q", nameCount[name], name)})
	}

	// Attribute every link to its producing and consuming components. A
	// component listing the same link twice on one side counts once.
	ends := make(map[*sim.Link]*linkEnds)
	at := func(l *sim.Link) *linkEnds {
		e := ends[l]
		if e == nil {
			e = &linkEnds{}
			ends[l] = e
		}
		return e
	}
	for i, c := range comps {
		if op, ok := c.(sim.OutputPorts); ok {
			claimed := make(map[*sim.Link]bool)
			for _, l := range op.OutputLinks() {
				if l == nil {
					diags = append(diags, Diag{DiagNilLink,
						fmt.Sprintf("node %q has a nil output link", c.Name())})
					continue
				}
				if !claimed[l] {
					claimed[l] = true
					at(l).producers = append(at(l).producers, i)
				}
			}
		}
		if ip, ok := c.(sim.InputPorts); ok {
			claimed := make(map[*sim.Link]bool)
			for _, l := range ip.InputLinks() {
				if l == nil {
					diags = append(diags, Diag{DiagNilLink,
						fmt.Sprintf("node %q has a nil input link", c.Name())})
					continue
				}
				if !claimed[l] {
					claimed[l] = true
					at(l).consumers = append(at(l).consumers, i)
				}
			}
		}
	}

	names := func(idx []int) string {
		out := make([]string, len(idx))
		for i, k := range idx {
			out[i] = comps[k].Name()
		}
		sort.Strings(out)
		return strings.Join(out, ", ")
	}

	for _, l := range g.Sys.Links() {
		if l.Capacity() < 1 {
			diags = append(diags, Diag{DiagZeroCapacity,
				fmt.Sprintf("link %q has capacity %d; nothing can ever be pushed", l.Name(), l.Capacity())})
		}
		if l.Latency() < 1 {
			diags = append(diags, Diag{DiagBadLatency,
				fmt.Sprintf("link %q has latency %d; links are registered and need latency >= 1", l.Name(), l.Latency())})
		}
		e := ends[l]
		if e == nil || (len(e.producers) == 0 && len(e.consumers) == 0) {
			diags = append(diags, Diag{DiagOrphanLink,
				fmt.Sprintf("link %q is not connected to any registered node", l.Name())})
			continue
		}
		if len(e.producers) == 0 {
			diags = append(diags, Diag{DiagNoProducer,
				fmt.Sprintf("link %q is consumed by [%s] but has no producer — was the producing node registered with Graph.Add?",
					l.Name(), names(e.consumers))})
		}
		if len(e.consumers) == 0 {
			diags = append(diags, Diag{DiagNoConsumer,
				fmt.Sprintf("link %q is fed by [%s] but has no consumer — was the consuming node registered with Graph.Add?",
					l.Name(), names(e.producers))})
		}
		if len(e.producers) > 1 {
			diags = append(diags, Diag{DiagMultiProducer,
				fmt.Sprintf("link %q is pushed by %d nodes [%s]; fan-in requires a Merge",
					l.Name(), len(e.producers), names(e.producers))})
		}
		if len(e.consumers) > 1 {
			diags = append(diags, Diag{DiagMultiConsumer,
				fmt.Sprintf("link %q is popped by %d nodes [%s]; fan-out requires a Fork or explicit duplication",
					l.Name(), len(e.consumers), names(e.consumers))})
		}
	}

	diags = append(diags, g.checkCycles(comps, ends)...)
	diags = append(diags, g.checkSchemas(comps, ends)...)
	diags = append(diags, g.checkReorder(comps)...)

	if len(diags) == 0 {
		return nil
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Code != diags[j].Code {
			return diags[i].Code < diags[j].Code
		}
		return diags[i].Msg < diags[j].Msg
	})
	return &CheckError{Diags: diags}
}

// checkCycles finds strongly connected components of the node graph and
// requires each non-trivial one (a recirculating pipeline) to contain a
// loop-entry Merge: without the drain protocol, end-of-stream can never
// leave the cycle and the simulation deadlocks after the work is done.
func (g *Graph) checkCycles(comps []sim.Component, ends map[*sim.Link]*linkEnds) []Diag {
	n := len(comps)
	adj := make([][]int, n)
	selfLoop := make([]bool, n)
	// Links() is creation-ordered, so edge lists — and therefore SCC
	// numbering — are deterministic.
	for _, l := range g.Sys.Links() {
		e := ends[l]
		if e == nil {
			continue
		}
		for _, p := range e.producers {
			for _, c := range e.consumers {
				if p == c {
					selfLoop[p] = true
				}
				adj[p] = append(adj[p], c)
			}
		}
	}

	var diags []Diag
	inCycle := make([]int, n) // 1+scc ordinal when the node is on a real cycle
	for si, scc := range tarjanSCC(adj) {
		if len(scc) == 1 && !selfLoop[scc[0]] {
			continue
		}
		for _, i := range scc {
			inCycle[i] = si + 1
		}
		entry := false
		for _, i := range scc {
			if m, ok := comps[i].(*Merge); ok && m.loopEntry() {
				entry = true
				break
			}
		}
		if entry {
			continue
		}
		member := make([]string, len(scc))
		for i, k := range scc {
			member[i] = comps[k].Name()
		}
		sort.Strings(member)
		diags = append(diags, Diag{DiagNoLoopCtl,
			fmt.Sprintf("cycle through [%s] has no loop-entry Merge (NewLoopMerge); end-of-stream can never drain it",
				strings.Join(member, ", "))})
	}
	diags = append(diags, g.checkLoopEntries(comps, ends, inCycle)...)
	return diags
}

// checkLoopEntries proves each NewLoopMerge is wired the way the drain
// protocol assumes: the priority input recirculates (its producer is on the
// merge's own cycle) and the secondary input is external (its producer is
// not). Swapping the two arguments compiles and even moves data, but the
// in-flight count then tracks the wrong stream, Inflight never returns to
// zero, and the stream-end token never enters the loop — a deadlock that is
// provable here at build time.
func (g *Graph) checkLoopEntries(comps []sim.Component, ends map[*sim.Link]*linkEnds, inCycle []int) []Diag {
	var diags []Diag
	producerIn := func(l *sim.Link, scc int) (bool, bool) {
		e := ends[l]
		if e == nil || len(e.producers) != 1 {
			return false, false // unattributable; covered by producer diags
		}
		return true, inCycle[e.producers[0]] == scc
	}
	for i, c := range comps {
		m, ok := c.(*Merge)
		if !ok || !m.loopEntry() {
			continue
		}
		scc := inCycle[i]
		if scc == 0 {
			diags = append(diags, Diag{DiagLoopEntryMiswired,
				fmt.Sprintf("loop-entry merge %q (NewLoopMerge) is not on any cycle; its drain protocol waits on a recirculating path that does not exist",
					m.Name())})
			continue
		}
		if known, in := producerIn(m.pri, scc); known && !in {
			diags = append(diags, Diag{DiagLoopEntryMiswired,
				fmt.Sprintf("loop-entry merge %q: priority input %q is fed from outside the cycle — the recirculating link must be the first argument of NewLoopMerge",
					m.Name(), m.pri.Name())})
		}
		if known, in := producerIn(m.sec, scc); known && in {
			diags = append(diags, Diag{DiagLoopEntryMiswired,
				fmt.Sprintf("loop-entry merge %q: external input %q is fed from its own cycle — the external link must be the second argument of NewLoopMerge",
					m.Name(), m.sec.Name())})
		}
	}
	return diags
}

// tarjanSCC returns the strongly connected components of adj, grouped and
// ordered by sim.StronglyConnected's emission numbering (a reverse
// topological order of the condensation), with members ascending. The
// shard planner, this checker, and the token-flow prover all condense
// through the same iterative Tarjan in internal/sim.
func tarjanSCC(adj [][]int) [][]int {
	a32 := make([][]int32, len(adj))
	for i, row := range adj {
		if len(row) == 0 {
			continue
		}
		r := make([]int32, len(row))
		for j, w := range row {
			r[j] = int32(w)
		}
		a32[i] = r
	}
	of, count := sim.StronglyConnected(a32)
	sccs := make([][]int, count)
	for i, c := range of {
		sccs[c] = append(sccs[c], i) // ascending i keeps members sorted
	}
	return sccs
}
