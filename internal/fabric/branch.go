package fabric

import (
	"fmt"

	"aurochs/internal/record"
	"aurochs/internal/ring"
	"aurochs/internal/sim"
)

// LoopCtl coordinates end-of-stream across a cyclic pipeline. It is the
// simulator's equivalent of the paper's drain-token protocol (§III-A): a
// tile with cyclic dataflow first lets the cycle empty, then signals stream
// end on the non-cyclic path. The control tracks threads alive inside the
// loop; stream end enters the loop body only when the external input has
// ended and no thread remains in flight.
type LoopCtl struct {
	inflight int64
	extEOS   bool
	// limit, when non-zero, is the admission bound: the loop entry stops
	// pulling external records once inflight+incoming would exceed it. A
	// recirculating pipeline deadlocks when its live thread population
	// reaches the loop's total token capacity (every link slot full, every
	// component blocked on the next); bounding admission strictly below
	// that capacity makes the classic ring-saturation wedge unreachable.
	// Recirculating traffic is never gated — it must keep draining.
	limit int64
}

// NewLoopCtl returns a fresh loop control.
func NewLoopCtl() *LoopCtl { return &LoopCtl{} }

// Limit sets the admission bound (0 = unbounded) and returns the control
// for chaining. Kernels with long recirculation (chain walks, retry loops)
// set it below the loop's token capacity; see CanAdmit.
func (c *LoopCtl) Limit(n int64) *LoopCtl {
	c.limit = n
	return c
}

// CanAdmit reports whether n more threads may enter the loop without
// exceeding the admission bound.
func (c *LoopCtl) CanAdmit(n int) bool {
	return c.limit == 0 || c.inflight+int64(n) <= c.limit
}

// Enter records a thread entering the loop from outside.
func (c *LoopCtl) Enter() { c.inflight++ }

// Exit records a thread leaving the loop (through an exit branch or a kill).
func (c *LoopCtl) Exit() {
	c.inflight--
	if c.inflight < 0 {
		panic("fabric: loop inflight underflow — an exit was counted twice")
	}
}

// Spawn records n additional threads created inside the loop (fork).
func (c *LoopCtl) Spawn(n int) { c.inflight += int64(n) }

// Inflight returns the live thread count.
func (c *LoopCtl) Inflight() int64 { return c.inflight }

// Output is one downstream port of a Filter.
type Output struct {
	// Link carries records routed to this output; nil drops them
	// (thread kill).
	Link *sim.Link
	// Exit marks an output that leaves the enclosing loop; routing a
	// record here (or dropping via a nil Link on an Exit output) counts
	// a LoopCtl exit.
	Exit bool
	// NoEOS suppresses end-of-stream on this output — set on the cyclic
	// (recirculating) path, which by the drain protocol never carries a
	// stream-end token out of the filter.
	NoEOS bool
}

// Filter is the branch-to-dataflow compute tile: a predicate routes each
// record to one of several outputs, and a compaction datapath (shuffle
// network + barrel shifter, fig. 5c) packs survivors into dense vectors on
// every output so downstream lanes stay full.
type Filter struct {
	name  string
	in    *sim.Link
	route func(*record.Rec) int
	outs  []Output
	ctl   *LoopCtl

	pipe       ring.Queue[timedVec]
	acc        []ring.Queue[record.Rec]
	lastAppend []int64
	eosIn      bool
	eos        []bool
	cyclic     bool
	inSchema   *record.Schema   // lint:sharedstate-ok — schemas are immutable after construction
	outSchemas []*record.Schema // parallel to outs (incl. nil-link slots); lint:sharedstate-ok — immutable
}

// NewFilter builds a filter. route returns the output index for each
// record, or -1 to kill the thread; the record is passed by pointer to
// avoid a copy per lane, and route may mutate it in place (the mutated
// record is what lands on the chosen output). ctl may be nil outside loops.
func NewFilter(name string, route func(*record.Rec) int, in *sim.Link, outs []Output, ctl *LoopCtl) *Filter {
	if len(outs) == 0 {
		panic("fabric: filter needs at least one output")
	}
	return &Filter{
		name:       name,
		in:         in,
		route:      route,
		outs:       outs,
		ctl:        ctl,
		acc:        make([]ring.Queue[record.Rec], len(outs)),
		lastAppend: make([]int64, len(outs)),
		eos:        make([]bool, len(outs)),
	}
}

// Cyclic marks the filter as living on a recirculating path that never
// carries end-of-stream; it is done whenever empty.
func (f *Filter) Cyclic() *Filter {
	f.cyclic = true
	return f
}

// Name implements sim.Component.
func (f *Filter) Name() string { return f.name }

// InputLinks implements sim.InputPorts.
func (f *Filter) InputLinks() []*sim.Link { return []*sim.Link{f.in} }

// OutputLinks implements sim.OutputPorts. Nil output links are legitimate
// thread kills, not wiring bugs, so they are omitted.
func (f *Filter) OutputLinks() []*sim.Link {
	var out []*sim.Link
	for _, o := range f.outs {
		if o.Link != nil {
			out = append(out, o.Link)
		}
	}
	return out
}

// Done implements sim.Component.
func (f *Filter) Done() bool {
	if f.cyclic {
		if f.pipe.Len() > 0 {
			return false
		}
		for i := range f.acc {
			if f.acc[i].Len() > 0 {
				return false
			}
		}
		return true
	}
	if !f.eosIn || f.pipe.Len() > 0 {
		return false
	}
	for i, o := range f.outs {
		if o.Link == nil || o.NoEOS {
			continue
		}
		if !f.eos[i] {
			return false
		}
	}
	for i := range f.acc {
		if f.acc[i].Len() > 0 {
			return false
		}
	}
	return true
}

// Idle implements sim.Idler: the filter can act only when a matured vector
// waits in the pipe, an accumulator holds records, input is available, or
// an EOS still needs forwarding.
func (f *Filter) Idle(cycle int64) bool {
	if f.pipe.Len() > 0 && f.pipe.Front().ready <= cycle {
		return false
	}
	for i := range f.acc {
		if f.acc[i].Len() > 0 {
			return false
		}
	}
	if !f.eosIn && !f.in.Empty() {
		return false
	}
	if f.eosIn && f.pipe.Len() == 0 {
		for i, o := range f.outs {
			if o.Link != nil && !o.NoEOS && !f.eos[i] {
				return false
			}
		}
	}
	return true
}

// WakeHint implements sim.WakeHinter: the filter's only self-timed event
// is the oldest pipelined vector maturing; everything else it reacts to
// arrives over its links.
func (f *Filter) WakeHint(int64) int64 {
	if f.pipe.Len() > 0 {
		return f.pipe.Front().ready
	}
	return sim.WakeNever
}

// SharedState implements sim.StateSharer: filters inside a loop mutate the
// loop's in-flight count.
func (f *Filter) SharedState() []any {
	if f.ctl == nil {
		return nil
	}
	return []any{f.ctl}
}

// WorstCaseInternalLatency implements sim.LatencyBound: records can wait
// out the pipeline plus the compaction-buffer flush timeout.
func (f *Filter) WorstCaseInternalLatency() int64 { return PipelineDepth + flushAge }

// Tick implements sim.Component.
func (f *Filter) Tick(cycle int64) {
	accepted := f.drainPipe(cycle)
	f.emit(cycle, accepted)
	f.accept(cycle)
	f.forwardEOS(cycle)
}

// accept pulls one input vector into the 6-stage pipe.
func (f *Filter) accept(cycle int64) {
	if f.eosIn || f.in.Empty() || f.pipe.Len() >= PipelineDepth+2 {
		return
	}
	for i := range f.acc {
		if f.acc[i].Len() >= 3*record.NumLanes {
			return // compaction buffers saturated; backpressure
		}
	}
	fl := f.in.Peek()
	f.in.Drop()
	if fl.EOS {
		f.eosIn = true
		return
	}
	tv := f.pipe.PushRefDirty()
	copyVec(&tv.v, &fl.Vec)
	tv.ready = cycle + PipelineDepth
}

// drainPipe routes one matured vector into the per-output accumulators and
// reports whether new records arrived this cycle.
func (f *Filter) drainPipe(cycle int64) bool {
	if f.pipe.Len() == 0 || f.pipe.Front().ready > cycle {
		return false
	}
	touched := f.lastAppend
	v := &f.pipe.Front().v
	if v.Mask == (1<<record.NumLanes)-1 {
		// Dense vector: route every lane first, then distribute. When all
		// lanes pick the same pushable output whose accumulator is empty,
		// the records are copied straight into the staged output vector —
		// exactly what this cycle's emit would do after buffering them
		// (16 appended to an empty accumulator ⇒ a full vector released
		// this cycle), minus one 52-byte copy per record.
		var ois [record.NumLanes]int
		oi0 := f.route(&v.Lane[0])
		same := oi0 >= 0 && oi0 < len(f.outs) && f.outs[oi0].Link != nil
		ois[0] = oi0
		for i := 1; i < record.NumLanes; i++ {
			ois[i] = f.route(&v.Lane[i])
			if ois[i] != oi0 {
				same = false
			}
		}
		if same && f.acc[oi0].Len() == 0 && f.outs[oi0].Link.CanPush() {
			out := f.outs[oi0].Link.StageVec(cycle)
			for i := 0; i < record.NumLanes; i++ {
				*out.PushRef() = v.Lane[i]
			}
			touched[oi0] = cycle
			if f.ctl != nil && f.outs[oi0].Exit {
				for k := 0; k < record.NumLanes; k++ {
					f.ctl.Exit()
				}
			}
			f.pipe.Drop()
			return true
		}
		for i := 0; i < record.NumLanes; i++ {
			f.sortLane(cycle, &v.Lane[i], ois[i])
		}
		f.pipe.Drop()
		return true
	}
	for i := 0; i < record.NumLanes; i++ {
		if !v.Valid(i) {
			continue
		}
		r := &v.Lane[i]
		f.sortLane(cycle, r, f.route(r))
	}
	f.pipe.Drop()
	return true
}

// sortLane lands one routed record in its output accumulator, counting loop
// exits for kills and nil-link exit outputs.
func (f *Filter) sortLane(cycle int64, r *record.Rec, oi int) {
	if oi < 0 {
		// Thread kill: in a loop this is an exit.
		if f.ctl != nil {
			f.ctl.Exit()
		}
		return
	}
	if oi >= len(f.outs) {
		panic(fmt.Sprintf("%s: route returned %d with %d outputs", f.name, oi, len(f.outs)))
	}
	if f.outs[oi].Link == nil {
		if f.ctl != nil && f.outs[oi].Exit {
			f.ctl.Exit()
		}
		return
	}
	*f.acc[oi].PushRefDirty() = *r
	f.lastAppend[oi] = cycle
}

// flushAge bounds how long a partial vector may sit in a compaction buffer
// while the input stays busy. Without it, a rarely-taken branch (e.g. the
// block-allocation path of fig. 7b) could starve behind a line-rate stream
// on the common path; the hardware's barrel-shifter accumulator drains on
// the same kind of timeout.
const flushAge = 4

// emit pushes at most one vector per output per cycle: full vectors
// eagerly; partial vectors when the input went idle, the stream is ending,
// or the oldest resident record has waited flushAge cycles.
func (f *Filter) emit(cycle int64, gotInput bool) {
	for i, o := range f.outs {
		if o.Link == nil || f.acc[i].Len() == 0 || !o.Link.CanPush() {
			continue
		}
		if f.acc[i].Len() < record.NumLanes && gotInput && !f.eosIn && cycle-f.lastAppend[i] < flushAge {
			continue
		}
		n := f.acc[i].Len()
		if n > record.NumLanes {
			n = record.NumLanes
		}
		v := o.Link.StageVec(cycle)
		for k := 0; k < n; k++ {
			*v.PushRef() = *f.acc[i].Front()
			f.acc[i].Drop()
		}
		if f.ctl != nil && o.Exit {
			for k := 0; k < n; k++ {
				f.ctl.Exit()
			}
		}
	}
}

// forwardEOS signals stream end on non-cyclic outputs once drained.
func (f *Filter) forwardEOS(cycle int64) {
	if !f.eosIn || f.pipe.Len() > 0 {
		return
	}
	for i := range f.acc {
		if f.acc[i].Len() > 0 {
			return
		}
	}
	for i, o := range f.outs {
		if o.Link == nil || o.NoEOS || f.eos[i] {
			continue
		}
		if o.Link.CanPush() {
			o.Link.PushEOS(cycle)
			f.eos[i] = true
		}
	}
}

// Merge combines two record streams into one, giving strict priority to the
// first input — on a cyclic path the recirculating stream must win to avoid
// deadlock (paper §III-A). Records from both inputs are re-packed into
// dense vectors.
type Merge struct {
	name string
	pri  *sim.Link
	sec  *sim.Link
	out  *sim.Link
	ctl  *LoopCtl // non-nil: this is a loop-entry merge; sec is external

	acc       ring.Queue[record.Rec]
	priEOS    bool
	secEOS    bool
	eos       bool
	cyclic    bool
	priSchema *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
	secSchema *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
	outSchem  *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

// NewMerge builds a plain merge: priority input pri, secondary sec.
func NewMerge(name string, pri, sec, out *sim.Link) *Merge {
	return &Merge{name: name, pri: pri, sec: sec, out: out}
}

// NewLoopMerge builds the entry merge of a cyclic pipeline: recirc is the
// cyclic path (priority), ext the external input. Records popped from ext
// are counted into ctl; end-of-stream enters the loop body only when ext
// has ended and the loop has drained.
func NewLoopMerge(name string, recirc, ext, out *sim.Link, ctl *LoopCtl) *Merge {
	if ctl == nil {
		panic("fabric: loop merge requires a LoopCtl")
	}
	return &Merge{name: name, pri: recirc, sec: ext, out: out, ctl: ctl}
}

// Cyclic marks the merge as living on a recirculating path; it is done
// whenever its accumulator is empty.
func (m *Merge) Cyclic() *Merge {
	m.cyclic = true
	return m
}

// Name implements sim.Component.
func (m *Merge) Name() string { return m.name }

// InputLinks implements sim.InputPorts.
func (m *Merge) InputLinks() []*sim.Link { return []*sim.Link{m.pri, m.sec} }

// OutputLinks implements sim.OutputPorts.
func (m *Merge) OutputLinks() []*sim.Link { return []*sim.Link{m.out} }

// loopEntry reports whether this merge coordinates a cyclic pipeline's
// drain protocol (built via NewLoopMerge). Graph.Check requires one on
// every cycle.
func (m *Merge) loopEntry() bool { return m.ctl != nil }

// Done implements sim.Component.
func (m *Merge) Done() bool {
	if m.cyclic {
		return m.acc.Len() == 0
	}
	return m.eos
}

// Idle implements sim.Idler. A loop-entry merge may also fire its EOS
// decision off the loop's in-flight count and its recirculating input's
// drain state; both are covered by SharedState, so the owning worker may
// read them here.
func (m *Merge) Idle(int64) bool {
	if m.acc.Len() > 0 {
		return false
	}
	if !m.priEOS && !m.pri.Empty() {
		return false
	}
	if !m.secEOS && !m.sec.Empty() {
		return false
	}
	if !m.eos {
		if m.ctl != nil {
			if m.secEOS && m.ctl.Inflight() == 0 && m.pri.Drained() {
				return false
			}
		} else if m.priEOS && m.secEOS {
			return false
		}
	}
	return true
}

// SharedState implements sim.StateSharer: a loop-entry merge counts
// entering threads into the loop control and reads the recirculating
// link's producer-side drain state, so it must share a worker with the
// loop's members and with that link's producer.
func (m *Merge) SharedState() []any {
	if m.ctl == nil {
		return nil
	}
	return []any{m.ctl, m.pri}
}

// WakeHint implements sim.WakeHinter: a merge has no self-timed events —
// everything it reacts to is link activity or loop-control state owned by
// shared-state partners.
func (m *Merge) WakeHint(int64) int64 { return sim.WakeNever }

// Tick implements sim.Component.
func (m *Merge) Tick(cycle int64) {
	// Pull at most one vector from each input, priority first.
	if m.acc.Len() < record.NumLanes && !m.priEOS && !m.pri.Empty() {
		f := m.pri.Peek()
		m.pri.Drop()
		if f.EOS {
			m.priEOS = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Mask&(1<<uint(i)) != 0 {
					*m.acc.PushRefDirty() = f.Vec.Lane[i]
				}
			}
		}
	}
	if m.acc.Len() < record.NumLanes && !m.secEOS && !m.sec.Empty() {
		f := m.sec.Peek()
		switch {
		case f.EOS:
			m.sec.Drop()
			m.secEOS = true
		case m.ctl != nil && !m.ctl.CanAdmit(f.Vec.Count()):
			// Admission bound reached: hold the external vector on its
			// link until exits free loop slots. The recirculating path
			// above is never gated, so the loop keeps draining and
			// inflight monotonically falls until admission reopens.
		default:
			m.sec.Drop()
			for i := 0; i < record.NumLanes; i++ {
				if f.Vec.Mask&(1<<uint(i)) != 0 {
					if m.ctl != nil {
						m.ctl.Enter()
					}
					*m.acc.PushRefDirty() = f.Vec.Lane[i]
				}
			}
		}
	}
	// Emit one dense vector.
	if m.acc.Len() > 0 && m.out.CanPush() {
		n := m.acc.Len()
		if n > record.NumLanes {
			n = record.NumLanes
		}
		v := m.out.StageVec(cycle)
		for i := 0; i < n; i++ {
			*v.PushRef() = *m.acc.Front()
			m.acc.Drop()
		}
	}
	m.maybeEOS(cycle)
}

func (m *Merge) maybeEOS(cycle int64) {
	if m.eos || m.acc.Len() > 0 || !m.out.CanPush() {
		return
	}
	if m.ctl != nil {
		// Loop entry: the cyclic path never carries EOS; drain is proven
		// by the in-flight count.
		if m.secEOS && m.ctl.Inflight() == 0 && m.pri.Drained() {
			m.out.PushEOS(cycle)
			m.eos = true
		}
		return
	}
	if m.priEOS && m.secEOS {
		m.out.PushEOS(cycle)
		m.eos = true
	}
}

// Fork spawns child threads from each parent record — the primitive that
// lets a search walk multiple paths through a tree simultaneously. The
// expansion function returns the children (possibly none, killing the
// parent). Inside a loop, the net thread-count change is reported to ctl.
type Fork struct {
	name string
	in   *sim.Link
	out  *sim.Link
	fn   func(record.Rec) []record.Rec
	ctl  *LoopCtl

	buf      ring.Queue[timedRec]
	eosIn    bool
	eos      bool
	cyclic   bool
	inSchema *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
	outSchem *record.Schema // lint:sharedstate-ok — schemas are immutable after construction
}

type timedRec struct {
	r     record.Rec
	ready int64
}

// NewFork builds a fork tile. ctl may be nil outside loops.
func NewFork(name string, fn func(record.Rec) []record.Rec, in, out *sim.Link, ctl *LoopCtl) *Fork {
	return &Fork{name: name, fn: fn, in: in, out: out, ctl: ctl}
}

// Cyclic marks the fork as living on a recirculating path; it is done
// whenever its expansion buffer is empty.
func (f *Fork) Cyclic() *Fork {
	f.cyclic = true
	return f
}

// Name implements sim.Component.
func (f *Fork) Name() string { return f.name }

// InputLinks implements sim.InputPorts.
func (f *Fork) InputLinks() []*sim.Link { return []*sim.Link{f.in} }

// OutputLinks implements sim.OutputPorts.
func (f *Fork) OutputLinks() []*sim.Link { return []*sim.Link{f.out} }

// Done implements sim.Component.
func (f *Fork) Done() bool {
	if f.cyclic {
		return f.buf.Len() == 0
	}
	return f.eos
}

// Idle implements sim.Idler: mirrors Tick's emit/accept/EOS conditions.
func (f *Fork) Idle(cycle int64) bool {
	if f.buf.Len() > 0 && f.buf.Front().ready <= cycle && f.out.CanPush() {
		return false
	}
	if !f.eosIn && !f.in.Empty() && f.buf.Len() < 4*record.NumLanes {
		return false
	}
	if f.eosIn && !f.eos && f.buf.Len() == 0 && f.out.CanPush() {
		return false
	}
	return true
}

// WakeHint implements sim.WakeHinter: the fork's only self-timed event is
// its oldest expanded child maturing out of the pipeline.
func (f *Fork) WakeHint(int64) int64 {
	if f.buf.Len() > 0 {
		return f.buf.Front().ready
	}
	return sim.WakeNever
}

// SharedState implements sim.StateSharer: forks inside a loop mutate the
// loop's in-flight count.
func (f *Fork) SharedState() []any {
	if f.ctl == nil {
		return nil
	}
	return []any{f.ctl}
}

// WorstCaseInternalLatency implements sim.LatencyBound: children mature
// after the pipeline depth.
func (f *Fork) WorstCaseInternalLatency() int64 { return PipelineDepth }

// Tick implements sim.Component.
func (f *Fork) Tick(cycle int64) {
	// Emit up to one dense vector of matured children.
	if f.buf.Len() > 0 && f.buf.Front().ready <= cycle && f.out.CanPush() {
		v := f.out.StageVec(cycle)
		n := 0
		for f.buf.Len() > 0 && n < record.NumLanes && f.buf.Front().ready <= cycle {
			*v.PushRef() = f.buf.Front().r
			f.buf.Drop()
			n++
		}
	}
	// Accept one parent vector when the expansion buffer has room.
	if !f.eosIn && !f.in.Empty() && f.buf.Len() < 4*record.NumLanes {
		fl := f.in.Peek()
		f.in.Drop()
		if fl.EOS {
			f.eosIn = true
		} else {
			for i := 0; i < record.NumLanes; i++ {
				if !fl.Vec.Valid(i) {
					continue
				}
				children := f.fn(fl.Vec.Lane[i])
				if f.ctl != nil {
					f.ctl.Spawn(len(children) - 1)
				}
				for _, c := range children {
					*f.buf.PushRef() = timedRec{r: c, ready: cycle + PipelineDepth}
				}
			}
		}
	}
	if f.eosIn && !f.eos && f.buf.Len() == 0 && f.out.CanPush() {
		f.out.PushEOS(cycle)
		f.eos = true
	}
}
