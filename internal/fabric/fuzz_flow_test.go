package fabric

import (
	"fmt"
	"testing"

	"aurochs/internal/record"
)

// FuzzFlowProve drives the token-flow prover with byte-steered pipelines
// of chained segments — straight stages and countdown loops, including
// deliberately defective loop variants — and enforces its two-sided
// contract:
//
//   - Prove never panics, whatever the topology;
//   - it is sound for the segment menu fuzzed here: a graph it passes
//     clean (no findings, no warnings) drains to completion within a
//     generous budget. Every route function in the menu terminates per
//     record (counts strictly decrease), so the only ways a build can
//     fail to drain are the structural defects the prover must catch.
//
// The defective variants — nil-ctl exits, missing exit outputs, swapped
// LoopMerge arguments, uncounted side entrances — must therefore never
// decode into a clean report. Committed seeds under
// testdata/fuzz/FuzzFlowProve pin one graph of each shape.
func FuzzFlowProve(f *testing.F) {
	// Seeds: all-clean chain; nil-ctl loop; no-exit loop; swapped entry;
	// uncounted side entry; garbage.
	f.Add([]byte{2, 16, 1, 3, 0, 2})
	f.Add([]byte{1, 8, 2, 1})
	f.Add([]byte{1, 8, 3, 2})
	f.Add([]byte{1, 8, 4, 3})
	f.Add([]byte{1, 8, 5, 1})
	f.Add([]byte{255, 255, 255, 255, 255})

	f.Fuzz(func(t *testing.T, data []byte) {
		build := func() *Graph { return buildFlowFuzzGraph(data) }
		rep := build().ProveFlow() // must not panic
		if !rep.DeadlockFree() || len(rep.Warnings) != 0 {
			return // prover rejected or abstained; nothing to assert
		}
		budget := int64(4000 + 100*rep.Occupancy.Total)
		if _, err := build().Run(budget); err != nil {
			t.Fatalf("prover passed a graph that does not drain: %v\n%s", err, rep)
		}
	})
}

// buildFlowFuzzGraph decodes data into a chain of segments. Byte 0 is the
// segment count, byte 1 the record count; each segment consumes two bytes:
// a variant selector and a countdown parameter.
func buildFlowFuzzGraph(data []byte) *Graph {
	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		b := data[pos]
		pos++
		return b
	}

	g := NewGraph()
	nseg := int(next())%3 + 1
	nrec := int(next())%24 + 4
	counts := uint32(0)
	cur := g.Link("in")
	srcRecs := make([]record.Rec, nrec)

	for s := 0; s < nseg; s++ {
		variant := int(next()) % 6
		laps := uint32(next())%3 + 1
		if laps > counts {
			counts = laps
		}
		pf := fmt.Sprintf("s%d.", s)
		switch variant {
		case 0: // straight map stage
			out := g.Link(pf + "out")
			g.Add(NewMap(pf+"map", decCount, cur, out))
			cur = out
		case 1: // clean countdown loop
			body, dec, exit, rec := g.Link(pf+"body"), g.Link(pf+"dec"),
				g.Link(pf+"exit"), g.Link(pf+"recirc")
			ctl := NewLoopCtl()
			g.Add(NewLoopMerge(pf+"entry", rec, cur, body, ctl))
			g.Add(NewMap(pf+"dec", decCount, body, dec).Cyclic())
			g.Add(NewFilter(pf+"exit?", exitWhenZero, dec, []Output{
				{Link: exit, Exit: true},
				{Link: rec, NoEOS: true},
			}, ctl))
			cur = exit
		case 2: // loop whose exit filter carries no ctl: uncounted exits
			body, dec, exit, rec := g.Link(pf+"body"), g.Link(pf+"dec"),
				g.Link(pf+"exit"), g.Link(pf+"recirc")
			ctl := NewLoopCtl()
			g.Add(NewLoopMerge(pf+"entry", rec, cur, body, ctl))
			g.Add(NewMap(pf+"dec", decCount, body, dec).Cyclic())
			g.Add(NewFilter(pf+"exit?", exitWhenZero, dec, []Output{
				{Link: exit, Exit: true},
				{Link: rec, NoEOS: true},
			}, nil))
			cur = exit
		case 3: // loop with no exit output at all
			body, rec := g.Link(pf+"body"), g.Link(pf+"recirc")
			ctl := NewLoopCtl()
			g.Add(NewLoopMerge(pf+"entry", rec, cur, body, ctl))
			g.Add(NewMap(pf+"spin", decCount, body, rec).Cyclic())
			// The chain ends here: nothing ever leaves this segment.
			g.Add(NewSink("snk", g.Link("dangling")))
			vecRecs(srcRecs, counts)
			g.Add(NewSource("src", srcRecs, g.Sys.Links()[0]))
			return g
		case 4: // swapped LoopMerge arguments
			body, dec, exit, rec := g.Link(pf+"body"), g.Link(pf+"dec"),
				g.Link(pf+"exit"), g.Link(pf+"recirc")
			ctl := NewLoopCtl()
			g.Add(NewLoopMerge(pf+"entry", cur, rec, body, ctl))
			g.Add(NewMap(pf+"dec", decCount, body, dec).Cyclic())
			g.Add(NewFilter(pf+"exit?", exitWhenZero, dec, []Output{
				{Link: exit, Exit: true},
				{Link: rec, NoEOS: true},
			}, ctl))
			cur = exit
		case 5: // clean loop plus an uncounted side entrance
			side, merged, body, dec, exit, rec := g.Link(pf+"side"), g.Link(pf+"merged"),
				g.Link(pf+"body"), g.Link(pf+"dec"), g.Link(pf+"exit"), g.Link(pf+"recirc")
			ctl := NewLoopCtl()
			g.Add(NewSource(pf+"sneak", flowRecs(2, 1), side))
			g.Add(NewLoopMerge(pf+"entry", rec, cur, merged, ctl))
			g.Add(NewMerge(pf+"mix", merged, side, body).Cyclic())
			g.Add(NewMap(pf+"dec", decCount, body, dec).Cyclic())
			g.Add(NewFilter(pf+"exit?", exitWhenZero, dec, []Output{
				{Link: exit, Exit: true},
				{Link: rec, NoEOS: true},
			}, ctl))
			cur = exit
		}
	}
	g.Add(NewSink("snk", cur))
	vecRecs(srcRecs, counts)
	g.Add(NewSource("src", srcRecs, g.Sys.Links()[0]))
	return g
}

// vecRecs fills recs with countdown records carrying the given count.
func vecRecs(recs []record.Rec, count uint32) {
	for i := range recs {
		recs[i] = record.Make(uint32(i), count)
	}
}
