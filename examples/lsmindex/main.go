// LSM index: streaming time-series ingest through the log-structured
// merge-tree of paper §IV-B. Batches of timestamped readings bulk-load
// into immutable B-trees; merges keep the exponential size invariant;
// recent-window queries prune old trees via the per-tree key range — the
// "tree list acts as a secondary index on time" effect.
package main

import (
	"fmt"
	"math/rand"

	"aurochs/internal/dram"
	"aurochs/internal/index/btree"
	"aurochs/internal/index/lsm"
)

func main() {
	const (
		batches   = 50
		batchSize = 4000
	)
	hbm := dram.New(dram.DefaultConfig())
	idx := lsm.New(hbm, 0, 1<<28)
	rng := rand.New(rand.NewSource(3))

	ts := uint32(0)
	for b := 0; b < batches; b++ {
		batch := make([]btree.KV, batchSize)
		for i := range batch {
			// Timestamps arrive roughly in order with jitter.
			ts += uint32(rng.Intn(4))
			batch[i] = btree.KV{Key: ts, Val: uint32(b*batchSize + i)}
		}
		idx.Insert(batch)
		if (b+1)%10 == 0 {
			fmt.Printf("after %2d batches: %7d entries in %d trees (%d merges, %.1f words written/entry)\n",
				b+1, idx.Len(), len(idx.Trees()), idx.MergesDone,
				float64(idx.WordsWritten)/float64(idx.Len()))
		}
	}

	fmt.Println()
	// Recent-window queries: the newest tree covers recent timestamps, so
	// pruning skips almost everything.
	for _, window := range []uint32{100, 10_000, ts} {
		lo := ts - window
		hits := idx.Range(lo, ts)
		fmt.Printf("range [now-%6d, now]: %7d hits, scanned %d of %d trees\n",
			window, len(hits), idx.TreesScanned(lo, ts), len(idx.Trees()))
	}
	fmt.Println()
	fmt.Println("Immutable trees give concurrent readers/writers without locks;")
	fmt.Println("bulk loads amortize index maintenance (paper §IV-B).")
}
