// Quickstart: build a hash table on the simulated Aurochs fabric and probe
// it, printing the simulated cycle counts and the microarchitectural
// story behind them (bank conflicts, CAS retries, thread reordering).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aurochs"
)

func main() {
	const n = 20000
	rng := rand.New(rand.NewSource(42))

	// Build side: n [key, value] records with ~n/2 distinct keys, so some
	// collision chains have real length.
	build := make([]aurochs.Rec, n)
	for i := range build {
		build[i] = aurochs.MakeRec(rng.Uint32()%(n/2), uint32(i))
	}

	ht, bres, err := aurochs.BuildHashTable(aurochs.DefaultHashTableParams(n), build, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("build: %d inserts in %d cycles (%.2f cycles/insert, %.1f µs at 1 GHz)\n",
		n, bres.Cycles, float64(bres.Cycles)/n, float64(bres.Cycles)/1e3)

	// Probe side: half hits, half misses.
	probes := make([]aurochs.Rec, n)
	for i := range probes {
		probes[i] = aurochs.MakeRec(rng.Uint32()%n, uint32(i))
	}
	matches, pres, err := aurochs.ProbeHashTable(ht, probes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe: %d probes → %d matches in %d cycles (%.2f cycles/probe)\n",
		n, len(matches), pres.Cycles, float64(pres.Cycles)/n)

	// The counters explain the throughput: grants per cycle at the
	// scratchpad banks, and how much conflict serialization happened.
	grants := pres.Stats.Get("prb.nodeR.grants")
	conflicts := pres.Stats.Get("prb.nodeR.conflicts")
	fmt.Printf("node scratchpad: %d grants, %d conflict-stall events\n", grants, conflicts)
	fmt.Println()
	fmt.Println("Every thread here is a record flowing through a cyclic pipeline:")
	fmt.Println("filter = branch, merge = reconvergence, CAS = cross-thread sync.")
}
