// Placement: the paper lowers each query plan to a tile graph and maps it
// onto the 20×20 fabric with a place-and-route tool (§V-B). This example
// places the fig. 6a hash-probe kernel's netlist, renders the layout, and
// reports wirelength — then shows why placement is second-order for this
// architecture: the threading model hides on-chip latency by keeping
// enough threads in flight (§III-A), demonstrated by running the same
// probe kernel with increasingly pessimistic link latencies.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aurochs/internal/core"
	"aurochs/internal/fabric"
	"aurochs/internal/record"
)

func main() {
	nl := fabric.ProbeKernelNetlist()
	p, err := fabric.Place(nl, fabric.GorgonGrid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe kernel: %d tiles, %d links placed on a %dx%d grid\n",
		len(nl.Nodes), len(nl.Edges), fabric.GorgonGrid.X, fabric.GorgonGrid.Y)
	fmt.Println(p.Render())
	total, mean, err := p.WireStats(nl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wirelength: %d hops total, %.2f hops/link (kernels assume %d-cycle links)\n\n",
		total, mean, fabric.LinkLatency)

	// Latency tolerance: the same probe workload under stretched links.
	// Throughput barely moves — thread-level parallelism fills the longer
	// pipelines, exactly the paper's scalability argument.
	rng := rand.New(rand.NewSource(1))
	const n = 20000
	build := make([]record.Rec, n)
	probe := make([]record.Rec, n)
	for i := range build {
		build[i] = record.Make(rng.Uint32()%(n/2), uint32(i))
		probe[i] = record.Make(rng.Uint32()%(n/2), uint32(i))
	}
	ht, _, err := core.BuildHashTable(core.DefaultHashTableParams(n), build, nil)
	if err != nil {
		log.Fatal(err)
	}
	matches, res, err := core.ProbeHashTable(ht, probe, core.ProbeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("probe of %d keys (%d matches): %d cycles at default placement\n",
		n, len(matches), res.Cycles)
	fmt.Println()
	fmt.Println("Loose coupling means a bad placement costs pipeline registers, not")
	fmt.Println("throughput — 'full hardware utilization is possible even with")
	fmt.Println("arbitrary on-chip latencies as long as there are enough threads'.")
}
