// Rideshare: the paper's headline scenario end to end — run the fig. 13
// benchmark queries on all three engines (Aurochs fabric simulator, CPU
// baseline, GPU model), verify they agree, and print the per-query
// comparison that fig. 14 plots.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"aurochs"
)

func main() {
	pipelines := flag.Int("p", 4, "Aurochs stream-level parallelism")
	seed := flag.Int64("seed", 1, "dataset seed")
	flag.Parse()

	d := aurochs.GenerateDataset(aurochs.SmallScale(), *seed)
	fmt.Printf("dataset: %d rides, %d requests, %d status reports, %d zones\n\n",
		len(d.Rides), len(d.RideReqs), len(d.DriverStatus), len(d.Locations))

	engines := []aurochs.Engine{
		aurochs.NewCPUEngine(),
		aurochs.NewGPUEngine(),
		aurochs.NewAurochsEngine(*pipelines),
	}
	results := map[string][]aurochs.QueryResult{}
	for _, e := range engines {
		rs, err := aurochs.RunQueries(e, d)
		if err != nil {
			log.Fatalf("%s: %v", e.Name(), err)
		}
		results[e.Name()] = rs
	}

	// Cross-check: identical fingerprints or the comparison is void.
	for q := range results["cpu"] {
		fp := results["cpu"][q].Fingerprint
		for _, e := range engines {
			if results[e.Name()][q].Fingerprint != fp {
				log.Fatalf("%s: %s result differs from cpu", results["cpu"][q].Query, e.Name())
			}
		}
	}
	fmt.Println("all engines agree on all nine queries ✓")
	fmt.Println()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "query\trows\tcpu\tgpu\taurochs\tvs cpu\tvs gpu")
	for q := range results["cpu"] {
		c := results["cpu"][q]
		g := results["gpu"][q]
		a := results["aurochs"][q]
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%.0fx\t%.1fx\n",
			c.Query, c.Rows,
			c.Cost.Duration().Round(1000), g.Cost.Duration().Round(1000), a.Cost.Duration().Round(1000),
			c.Cost.Seconds/a.Cost.Seconds, g.Cost.Seconds/a.Cost.Seconds)
	}
	w.Flush()
	fmt.Println("\n(speedups grow with dataset scale; see cmd/aurochs-bench -fig 14)")
}
