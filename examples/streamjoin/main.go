// Stream join: the low-latency symmetric hash join of paper §III-A/§IV-A.
// Two live streams — ride requests and driver position reports — each
// maintain a hash table keyed by geohash cell. Every micro-batch, each
// stream inserts its new records into its own table and probes the *other*
// stream's table, pairing requests with co-located drivers. This works at
// line rate because Aurochs' lock-free CAS chains keep buckets consistent
// for concurrent readers and writers, and the dual-ported scratchpads
// schedule read and write streams independently (paper §IV-A).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aurochs"
	"aurochs/internal/core"
	"aurochs/internal/record"
)

func main() {
	const (
		batches   = 8
		batchSize = 2000
		cells     = 512 // geohash-style join key space
	)
	rng := rand.New(rand.NewSource(7))
	hbm := aurochs.NewHBM()

	total := batches * batchSize
	reqTable, _, err := core.BuildHashTable(core.DefaultHashTableParams(total), nil, hbm)
	if err != nil {
		log.Fatal(err)
	}
	drvTable, _, err := core.BuildHashTable(core.DefaultHashTableParams(total), nil, hbm)
	if err != nil {
		log.Fatal(err)
	}

	var totalCycles int64
	var totalMatches int
	for b := 0; b < batches; b++ {
		reqs := make([]record.Rec, batchSize) // [cell, reqID]
		drvs := make([]record.Rec, batchSize) // [cell, driverID]
		for i := range reqs {
			reqs[i] = record.Make(rng.Uint32()%cells, uint32(b*batchSize+i))
			drvs[i] = record.Make(rng.Uint32()%cells, uint32(100000+b*batchSize+i))
		}

		// Ingest both sides (streaming insert through the build pipeline).
		insRes1, err := core.InsertHashTable(drvTable, drvs)
		if err != nil {
			log.Fatal(err)
		}
		insRes2, err := core.InsertHashTable(reqTable, reqs)
		if err != nil {
			log.Fatal(err)
		}

		// Cross-probe: new requests against all drivers seen so far, new
		// drivers against all requests seen so far.
		m1, p1, err := core.ProbeHashTable(drvTable, reqs, core.ProbeOptions{FirstMatchOnly: true})
		if err != nil {
			log.Fatal(err)
		}
		m2, p2, err := core.ProbeHashTable(reqTable, drvs, core.ProbeOptions{FirstMatchOnly: true})
		if err != nil {
			log.Fatal(err)
		}

		cyc := insRes1.Cycles + insRes2.Cycles + p1.Cycles + p2.Cycles
		totalCycles += cyc
		totalMatches += len(m1) + len(m2)
		fmt.Printf("batch %d: %4d req→drv + %4d drv→req matches | %7d cycles (%.1f µs batch latency)\n",
			b, len(m1), len(m2), cyc, float64(cyc)/1e3)
	}
	fmt.Printf("\n%d batches, %d matches, %.2f ms simulated — symmetric stream join, no locks\n",
		batches, totalMatches, float64(totalCycles)/1e6)
}
