// Stream join: the low-latency symmetric hash join of paper §III-A/§IV-A.
// Two live streams — ride requests and driver position reports — each
// maintain a hash table keyed by geohash cell. Every micro-batch, each
// stream inserts its new records into its own table and probes the *other*
// stream's table, pairing requests with co-located drivers. All four
// pipelines of a window — two inserts, two cross-probes — run concurrently
// in ONE fabric graph: Aurochs' lock-free CAS chains keep buckets
// consistent for concurrent readers and writers, and the dual-ported
// scratchpads schedule read and write streams independently (paper §IV-A).
// The window's loop topology is registered in internal/blueprint and
// proven deadlock-free by the token-flow prover (aurochs-vet -flow).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"aurochs"
	"aurochs/internal/core"
	"aurochs/internal/record"
)

func main() {
	const (
		batches   = 8
		batchSize = 2000
		cells     = 512 // geohash-style join key space
	)
	rng := rand.New(rand.NewSource(7))
	hbm := aurochs.NewHBM()

	total := batches * batchSize
	join, err := core.NewSymmetricJoin(core.DefaultHashTableParams(total), hbm)
	if err != nil {
		log.Fatal(err)
	}

	var totalCycles int64
	var totalMatches int
	for b := 0; b < batches; b++ {
		reqs := make([]record.Rec, batchSize) // [cell, reqID]
		drvs := make([]record.Rec, batchSize) // [cell, driverID]
		for i := range reqs {
			reqs[i] = record.Make(rng.Uint32()%cells, uint32(b*batchSize+i))
			drvs[i] = record.Make(rng.Uint32()%cells, uint32(100000+b*batchSize+i))
		}

		// One graph run per window: ingest both sides and cross-probe —
		// new requests against all drivers seen so far, new drivers
		// against all requests seen so far.
		m1, m2, res, err := join.Window(reqs, drvs, core.ProbeOptions{FirstMatchOnly: true})
		if err != nil {
			log.Fatal(err)
		}

		totalCycles += res.Cycles
		totalMatches += len(m1) + len(m2)
		fmt.Printf("batch %d: %4d req→drv + %4d drv→req matches | %7d cycles (%.1f µs batch latency)\n",
			b, len(m1), len(m2), res.Cycles, float64(res.Cycles)/1e3)
	}
	fmt.Printf("\n%d batches, %d matches, %.2f ms simulated — symmetric stream join, one graph per window, no locks\n",
		batches, totalMatches, float64(totalCycles)/1e6)
}
