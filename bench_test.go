package aurochs

import (
	"math/rand"
	"testing"

	"aurochs/internal/area"
	"aurochs/internal/baseline/cpu"
	"aurochs/internal/baseline/gorgon"
	"aurochs/internal/baseline/gpu"
	"aurochs/internal/core"
	"aurochs/internal/index/btree"
	"aurochs/internal/index/rtree"
	"aurochs/internal/perfmodel"
	"aurochs/internal/queries"
	"aurochs/internal/record"
)

// One benchmark per table/figure of the paper's evaluation, plus kernel
// micro-benchmarks. Simulated-cycle results are attached as custom metrics
// (cycles/record at the fabric's 1 GHz clock); wall-clock ns/op measures
// the simulator itself.

func benchKV(n int, seed int64) []record.Rec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]record.Rec, n)
	for i := range out {
		out[i] = record.Make(rng.Uint32(), uint32(i))
	}
	return out
}

// BenchmarkFig10Area regenerates the area breakdown.
func BenchmarkFig10Area(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := area.Default()
		if m.ChipOverhead() < 0.04 {
			b.Fatal("area model broken")
		}
	}
	b.ReportMetric(100*area.Default().ScratchpadOverhead(), "%spad-overhead")
	b.ReportMetric(100*area.Default().ChipOverhead(), "%chip-overhead")
}

// BenchmarkFig11Join runs the fig. 11a headline kernel: the partitioned
// hash join on the cycle simulator.
func BenchmarkFig11Join(b *testing.B) {
	const n = 1 << 14
	build, probe := benchKV(n, 1), benchKV(n, 2)
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, res, err := core.HashJoin(nil, build, probe, core.HashJoinOptions{Pipelines: 8})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(2*n), "cycles/rec")
	b.ReportMetric(perfmodel.JoinThroughputGBs(n, n, float64(cycles)), "sim-GB/s")
}

// BenchmarkFig11SortMergeJoin is the Gorgon side of fig. 11a.
func BenchmarkFig11SortMergeJoin(b *testing.B) {
	const n = 1 << 14
	x, y := benchKV(n, 3), benchKV(n, 4)
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, res, err := gorgon.Join(nil, x, y)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(2*n), "cycles/rec")
}

// BenchmarkFig11Spatial is fig. 11b's Aurochs side: R-tree window probes.
func BenchmarkFig11Spatial(b *testing.B) {
	d := queries.Generate(queries.SmallScale(), 5)
	e := queries.NewAurochs(4)
	pts := make([]queries.Point, len(d.DriverStatus))
	for i, s := range d.DriverStatus {
		pts[i] = queries.Point{X: s.X, Y: s.Y, ID: uint32(i)}
	}
	circles := make([]queries.CircleQ, 256)
	for i := range circles {
		r := d.RideReqs[i]
		circles[i] = queries.CircleQ{X: r.X, Y: r.Y, R: queries.KM, Tag: uint32(i)}
	}
	var sec float64
	for i := 0; i < b.N; i++ {
		_, cost, err := e.SpatialProbe(pts, circles)
		if err != nil {
			b.Fatal(err)
		}
		sec = cost.Seconds
	}
	b.ReportMetric(sec*1e9/float64(len(circles)), "sim-ns/query")
}

// BenchmarkFig12Scaling sweeps stream-level parallelism on the simulator.
func BenchmarkFig12Scaling(b *testing.B) {
	const n = 1 << 14
	build, probe := benchKV(n, 6), benchKV(n, 7)
	for _, p := range []int{1, 2, 4, 8} {
		p := p
		b.Run(pname(p), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				_, res, err := core.HashJoin(nil, build, probe, core.HashJoinOptions{Pipelines: p})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(2*n)/float64(cycles), "rec/cycle")
		})
	}
}

func pname(p int) string {
	return map[int]string{1: "P1", 2: "P2", 4: "P4", 8: "P8"}[p]
}

// BenchmarkFig14Queries runs the nine ridesharing queries on the Aurochs
// engine (the fig. 14 numerator).
func BenchmarkFig14Queries(b *testing.B) {
	d := queries.Generate(queries.SmallScale(), 8)
	e := queries.NewAurochs(4)
	var total float64
	for i := 0; i < b.N; i++ {
		rs, err := queries.RunAll(e, d)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range rs {
			total += r.Cost.Seconds
		}
	}
	b.ReportMetric(total*1e3, "sim-ms/9-queries")
}

// BenchmarkFig14CPUBaseline is the fig. 14 denominator.
func BenchmarkFig14CPUBaseline(b *testing.B) {
	d := queries.Generate(queries.SmallScale(), 8)
	e := queries.NewCPU()
	for i := 0; i < b.N; i++ {
		if _, err := queries.RunAll(e, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarpEfficiency reproduces the §III-A GPU profiling claim.
func BenchmarkWarpEfficiency(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 1 << 18
	buckets := make([]int, n)
	for i := 0; i < n; i++ {
		buckets[rng.Intn(n)]++
	}
	trips := make([]int, n)
	for i := range trips {
		l := buckets[rng.Intn(n)]
		if l == 0 {
			l = 1
		}
		trips[i] = l
	}
	dev := gpu.V100()
	var eff float64
	for i := 0; i < b.N; i++ {
		eff = dev.DivergentLoop(trips, 8).WarpEfficiency
	}
	b.ReportMetric(100*eff, "%warp-eff")
}

// BenchmarkAblationReorder compares the Aurochs reordering scratchpad with
// Capstan's in-order dequeue on the probe kernel.
func BenchmarkAblationReorder(b *testing.B) {
	const n = 1 << 13
	build, probe := benchKV(n, 10), benchKV(n, 11)
	for _, mode := range []struct {
		name string
		tun  core.Tuning
	}{
		{"reorder", core.Tuning{}},
		{"inorder", core.Tuning{InOrderSpad: true}},
		{"no-forwarding", core.Tuning{NoForwarding: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				p := core.DefaultHashTableParams(n)
				p.Tuning = mode.tun
				ht, _, err := core.BuildHashTable(p, build, nil)
				if err != nil {
					b.Fatal(err)
				}
				_, res, err := core.ProbeHashTable(ht, probe, core.ProbeOptions{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles)/float64(n), "cycles/probe")
		})
	}
}

// BenchmarkKernelHashBuild isolates the fig. 7a build pipeline.
func BenchmarkKernelHashBuild(b *testing.B) {
	const n = 1 << 14
	input := benchKV(n, 12)
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, res, err := core.BuildHashTable(core.DefaultHashTableParams(n), input, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(n), "cycles/insert")
}

// BenchmarkKernelPartition isolates the fig. 7b pipeline.
func BenchmarkKernelPartition(b *testing.B) {
	const n = 1 << 14
	input := benchKV(n, 13)
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, res, err := core.Partition(core.DefaultPartitionParams(n, 8, 2), input, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(n), "cycles/rec")
}

// BenchmarkCPUJoin measures the real software baseline on this host.
func BenchmarkCPUJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	const n = 1 << 18
	mk := func() []cpu.KV {
		out := make([]cpu.KV, n)
		for i := range out {
			out[i] = cpu.KV{Key: rng.Uint32(), Val: uint32(i)}
		}
		return out
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.HashJoin(x, y)
	}
	b.SetBytes(2 * n * 8)
}

// BenchmarkKernelHashAggregate isolates the lock-free counting aggregation.
func BenchmarkKernelHashAggregate(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	const n = 1 << 14
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = rng.Uint32() % 1024
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, res, err := core.HashAggregate(core.DefaultHashTableParams(2048), keys, nil)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(n), "cycles/key")
}

// BenchmarkKernelSpatialJoin runs the fig. 9b synchronized two-tree join.
func BenchmarkKernelSpatialJoin(b *testing.B) {
	h := NewHBM()
	rng := rand.New(rand.NewSource(16))
	mkTree := func(n int, base uint32) *rtree.Tree {
		ents := make([]rtree.Entry, n)
		for i := range ents {
			x, y := rng.Uint32()%(1<<14), rng.Uint32()%(1<<14)
			ents[i] = rtree.Entry{Rect: rtree.Rect{MinX: x, MinY: y, MaxX: x + 150, MaxY: y + 150}, ID: uint32(i)}
		}
		return rtree.Build(h, base, ents, 1<<14)
	}
	ta := mkTree(1500, core.RegionTables)
	tb := mkTree(1500, core.RegionTables+(1<<24))
	var cycles int64
	for i := 0; i < b.N; i++ {
		pairs, res, err := core.RTreeSpatialJoin(ta, tb, core.Tuning{})
		if err != nil {
			b.Fatal(err)
		}
		if len(pairs) == 0 {
			b.Fatal("no pairs")
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkKernelBTreeRange isolates the fig. 6b tree walk.
func BenchmarkKernelBTreeRange(b *testing.B) {
	h := NewHBM()
	rng := rand.New(rand.NewSource(17))
	items := make([]btree.KV, 1<<16)
	for i := range items {
		items[i] = btree.KV{Key: rng.Uint32(), Val: uint32(i)}
	}
	tr := btree.Build(h, core.RegionTables, items)
	queries := make([]core.RangeQuery, 512)
	for i := range queries {
		lo := rng.Uint32()
		queries[i] = core.RangeQuery{Lo: lo, Hi: lo + (1 << 22), Tag: uint32(i)}
	}
	var cycles int64
	for i := 0; i < b.N; i++ {
		_, res, err := core.BTreeSearchP(tr, queries, core.Tuning{}, 4)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(len(queries)), "cycles/query")
}
